(* Tests for the CONGEST simulator: messages, runtime semantics, bandwidth
   enforcement, traces, and the distributed algorithms. *)

module Graph = Wgraph.Graph
module Build = Wgraph.Build
module Msg = Congest.Msg
module Program = Congest.Program
module Runtime = Congest.Runtime
module Trace = Congest.Trace
module Bitset = Stdx.Bitset
module Prng = Stdx.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Msg *)

let test_msg_sizes () =
  check_int "unit" 1 Msg.unit_msg.Msg.bits;
  check_int "bool" 1 (Msg.bool_msg true).Msg.bits;
  check_int "int" 5 (Msg.int_msg ~width:5 31).Msg.bits;
  check_int "pair" 9 (Msg.pair_msg ~widths:(4, 5) (15, 31)).Msg.bits;
  check_int "triple" 12 (Msg.triple_msg ~widths:(2, 5, 5) (3, 0, 31)).Msg.bits

let test_msg_overflow_rejected () =
  Alcotest.check_raises "too big" (Invalid_argument "Msg: value 32 does not fit in 5 bits")
    (fun () -> ignore (Msg.int_msg ~width:5 32));
  Alcotest.check_raises "negative" (Invalid_argument "Msg: negative payload")
    (fun () -> ignore (Msg.int_msg ~width:5 (-1)))

let test_id_width () =
  check_int "n=2" 1 (Msg.id_width ~n:2);
  check_int "n=3" 2 (Msg.id_width ~n:3);
  check_int "n=1024" 10 (Msg.id_width ~n:1024);
  check_int "n=1 (clamped)" 1 (Msg.id_width ~n:1)

(* ------------------------------------------------------------------ *)
(* Runtime semantics *)

(* A program that sends its id to all neighbors in round 0 and records what
   it receives in round 1, then halts. *)
let echo_once_program collected =
  {
    Program.name = "echo-once";
    spawn =
      (fun view ->
        let halted = ref false in
        {
          Program.step =
            (fun ~round ~inbox ->
              match round with
              | 0 ->
                  Array.to_list
                    (Array.map
                       (fun nb -> (nb, Msg.id_msg ~n:view.Program.n view.Program.id))
                       view.Program.neighbors)
              | _ ->
                  List.iter
                    (fun (src, (m : Msg.t)) ->
                      match m.Msg.payload with
                      | Msg.Int v -> collected := (view.Program.id, src, v) :: !collected
                      | _ -> ())
                    inbox;
                  halted := true;
                  []);
          halted = (fun () -> !halted);
          output = (fun () -> Some view.Program.id);
        });
  }

let test_delivery_next_round () =
  let collected = ref [] in
  let g = Build.path 3 in
  let result = Runtime.run (echo_once_program collected) g in
  check_int "rounds" 2 result.Runtime.rounds_executed;
  check "all halted" true result.Runtime.all_halted;
  (* node 1 hears from 0 and 2; each payload matches the sender id *)
  check "payload = sender" true
    (List.for_all (fun (_, src, v) -> src = v) !collected);
  check_int "total receptions = 2m" 4 (List.length !collected)

let test_trace_accounting () =
  let collected = ref [] in
  let g = Build.path 3 in
  let result = Runtime.run (echo_once_program collected) g in
  let tr = result.Runtime.trace in
  (* 4 directed sends of id_width(3)=2 bits in round 0 *)
  check_int "messages" 4 (Trace.total_messages tr);
  check_int "bits" 8 (Trace.total_bits tr);
  check_int "round 0 bits" 8 (Trace.bits_in_round tr 0);
  check_int "round 1 bits" 0 (Trace.bits_in_round tr 1);
  check_int "edge 0->1" 2 (Trace.bits_on_edge tr ~src:0 ~dst:1);
  check_int "edge 1->0" 2 (Trace.bits_on_edge tr ~src:1 ~dst:0);
  check_int "edge 0->2 (non-edge)" 0 (Trace.bits_on_edge tr ~src:0 ~dst:2);
  check_int "cut bits" 4 (Trace.cut_bits tr [| 0; 0; 1 |]);
  check_int "cut messages" 2 (Trace.cut_messages tr [| 0; 0; 1 |]);
  check_int "max per edge-round" 2 (Trace.max_bits_per_edge_round tr)

let test_bandwidth_enforced () =
  (* A program that sends far more than c log n bits on one edge. *)
  let hog =
    {
      Program.name = "bandwidth-hog";
      spawn =
        (fun view ->
          let halted = ref false in
          {
            Program.step =
              (fun ~round:_ ~inbox:_ ->
                halted := true;
                match view.Program.neighbors with
                | [||] -> []
                | nbrs ->
                    List.init 50 (fun _ -> (nbrs.(0), Msg.int_msg ~width:8 1)));
            halted = (fun () -> !halted);
            output = (fun () -> None);
          });
    }
  in
  let g = Build.path 2 in
  check "raises" true
    (try
       ignore (Runtime.run hog g);
       false
     with Runtime.Bandwidth_exceeded _ -> true)

let test_illegal_recipient () =
  let rogue =
    {
      Program.name = "rogue";
      spawn =
        (fun view ->
          let halted = ref false in
          {
            Program.step =
              (fun ~round:_ ~inbox:_ ->
                halted := true;
                if view.Program.id = 0 then [ (2, Msg.unit_msg) ] else []);
            halted = (fun () -> !halted);
            output = (fun () -> None);
          });
    }
  in
  let g = Build.path 3 in
  (* 0 and 2 are not adjacent in P3 *)
  check "raises" true
    (try
       ignore (Runtime.run rogue g);
       false
     with Runtime.Illegal_recipient _ -> true)

let test_broadcast_mode_uniformity () =
  let non_uniform =
    {
      Program.name = "non-uniform";
      spawn =
        (fun view ->
          let halted = ref false in
          {
            Program.step =
              (fun ~round:_ ~inbox:_ ->
                halted := true;
                Array.to_list
                  (Array.map
                     (fun nb -> (nb, Msg.int_msg ~width:4 (nb mod 2)))
                     view.Program.neighbors));
            halted = (fun () -> !halted);
            output = (fun () -> None);
          });
    }
  in
  let g = Build.star 4 in
  let config = { Runtime.default_config with Runtime.mode = Runtime.Broadcast } in
  check "unicast fine" true
    (try ignore (Runtime.run non_uniform g); true with _ -> false);
  check "broadcast rejects" true
    (try
       ignore (Runtime.run ~config non_uniform g);
       false
     with Runtime.Non_uniform_broadcast { round = 0; src } -> src >= 0);
  (* The checked entry point reports the same violation structurally. *)
  (match Runtime.run_checked ~config non_uniform g with
  | Error { Runtime.reason = Runtime.Broadcast_mismatch; round = 0; _ } -> ()
  | Error _ -> Alcotest.fail "wrong failure reason"
  | Ok _ -> Alcotest.fail "broadcast violation not detected")

let test_broadcast_mode_uniform_ok () =
  (* A uniform multi-recipient outbox is exactly what Broadcast mode
     permits: the same flood must succeed in both modes with identical
     outputs. *)
  let g = Build.star 5 in
  let config = { Runtime.default_config with Runtime.mode = Runtime.Broadcast } in
  let uni = Runtime.run ~config (Congest.Algo_flood.max_id ~rounds:3) g in
  let ref_run = Runtime.run (Congest.Algo_flood.max_id ~rounds:3) g in
  check "halted" true uni.Runtime.all_halted;
  check "same outputs as unicast" true
    (uni.Runtime.outputs = ref_run.Runtime.outputs);
  Array.iter
    (fun o -> Alcotest.(check (option int)) "knows max" (Some 4) o)
    uni.Runtime.outputs

let test_max_rounds_cutoff () =
  let chatty =
    {
      Program.name = "never-halts";
      spawn =
        (fun _view ->
          {
            Program.step = (fun ~round:_ ~inbox:_ -> []);
            halted = (fun () -> false);
            output = (fun () -> None);
          });
    }
  in
  let config = { Runtime.default_config with Runtime.max_rounds = 17 } in
  let result = Runtime.run ~config chatty (Build.path 2) in
  check_int "cutoff" 17 result.Runtime.rounds_executed;
  check "not all halted" false result.Runtime.all_halted

let test_halted_node_receives_nothing () =
  (* A node that halts at round 0 must never be stepped again, even when
     neighbors keep sending to it. *)
  let steps_after_halt = ref 0 in
  let quitter =
    {
      Program.name = "quitter";
      spawn =
        (fun view ->
          let halted = ref false in
          {
            Program.step =
              (fun ~round ~inbox:_ ->
                if view.Program.id = 0 then begin
                  if round > 0 then incr steps_after_halt;
                  halted := true;
                  []
                end
                else if round >= 5 then begin
                  halted := true;
                  []
                end
                else if Array.exists (( = ) 0) view.Program.neighbors then
                  (* keep sending to node 0 *)
                  [ (0, Msg.unit_msg) ]
                else []);
            halted = (fun () -> !halted);
            output = (fun () -> None);
          });
    }
  in
  ignore (Runtime.run quitter (Build.path 3));
  check_int "never stepped after halting" 0 !steps_after_halt

let test_bfs_disconnected () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  (* 2 and 3 isolated *)
  let result = Runtime.run (Congest.Algo_bfs.distances ~root:0 ~rounds:4) g in
  Alcotest.(check (option int)) "root" (Some 0) result.Runtime.outputs.(0);
  Alcotest.(check (option int)) "neighbor" (Some 1) result.Runtime.outputs.(1);
  Alcotest.(check (option int)) "unreachable" None result.Runtime.outputs.(2)

let test_determinism_same_seed () =
  let g = Build.cycle 9 in
  let r1 = Runtime.run Congest.Algo_luby.mis g in
  let r2 = Runtime.run Congest.Algo_luby.mis g in
  check "same outputs" true (r1.Runtime.outputs = r2.Runtime.outputs);
  let config = { Runtime.default_config with Runtime.seed = 4242 } in
  let r3 = Runtime.run ~config Congest.Algo_luby.mis g in
  (* Different seed *may* give a different MIS; at minimum it must still be
     a valid one (checked in the Luby tests).  Here we only pin that seed
     is what controls randomness: same config twice agrees. *)
  let r4 = Runtime.run ~config Congest.Algo_luby.mis g in
  check "same outputs (other seed)" true (r3.Runtime.outputs = r4.Runtime.outputs)

(* ------------------------------------------------------------------ *)
(* Algorithms: flooding / leader / BFS *)

let test_max_id_flood () =
  let g = Build.path 6 in
  let result = Runtime.run (Congest.Algo_flood.max_id ~rounds:6) g in
  Array.iter
    (fun o -> Alcotest.(check (option int)) "knows max" (Some 5) o)
    result.Runtime.outputs

let test_max_id_flood_too_few_rounds () =
  (* One round is not enough on a path: node 0 cannot know about node 5. *)
  let g = Build.path 6 in
  let result = Runtime.run (Congest.Algo_flood.max_id ~rounds:1) g in
  Alcotest.(check (option int)) "node 0 still local" (Some 0) result.Runtime.outputs.(0)

let test_leader_election () =
  let g = Build.cycle 7 in
  let result = Runtime.run (Congest.Algo_flood.leader_election ~rounds:8) g in
  let leaders =
    Array.to_list result.Runtime.outputs
    |> List.mapi (fun i o -> (i, o))
    |> List.filter (fun (_, o) -> o = Some true)
  in
  Alcotest.(check (list (pair int (option bool)))) "only max id" [ (6, Some true) ] leaders

let test_bfs_distances () =
  let g = Build.cycle 8 in
  let result = Runtime.run (Congest.Algo_bfs.distances ~root:0 ~rounds:8) g in
  let expected = Wgraph.Metrics.bfs_distances g 0 in
  Array.iteri
    (fun v o ->
      Alcotest.(check (option int)) (Printf.sprintf "dist %d" v) (Some expected.(v)) o)
    result.Runtime.outputs

let test_bfs_on_random_connected () =
  let rng = Prng.create 77 in
  for _ = 1 to 5 do
    let g = Build.erdos_renyi rng 20 0.25 in
    if Wgraph.Metrics.is_connected g then begin
      let result = Runtime.run (Congest.Algo_bfs.distances ~root:3 ~rounds:21) g in
      let expected = Wgraph.Metrics.bfs_distances g 3 in
      Array.iteri
        (fun v o -> Alcotest.(check (option int)) "distance" (Some expected.(v)) o)
        result.Runtime.outputs
    end
  done

let test_bfs_rounds_near_diameter () =
  let g = Build.path 10 in
  let result = Runtime.run (Congest.Algo_bfs.distances ~root:0 ~rounds:10) g in
  check "completes by rounds budget" true
    (result.Runtime.rounds_executed <= 10)

(* ------------------------------------------------------------------ *)
(* Algorithms: Luby & greedy MIS *)

let mis_set_of_outputs outputs =
  let n = Array.length outputs in
  let s = Bitset.create n in
  Array.iteri (fun v o -> if o = Some true then Bitset.add s v) outputs;
  s

let test_luby_valid_mis () =
  let rng = Prng.create 51 in
  for trial = 1 to 8 do
    let g = Build.erdos_renyi rng 25 0.2 in
    let config = { Runtime.default_config with Runtime.seed = trial } in
    let result = Runtime.run ~config Congest.Algo_luby.mis g in
    check "halted" true result.Runtime.all_halted;
    let s = mis_set_of_outputs result.Runtime.outputs in
    check "independent" true (Wgraph.Check.is_independent g s);
    check "maximal" true (Wgraph.Check.is_maximal_independent g s);
    (* every node decided *)
    Array.iter (fun o -> check "decided" true (o <> None)) result.Runtime.outputs
  done

let test_luby_on_clique () =
  let g = Build.complete 10 in
  let result = Runtime.run Congest.Algo_luby.mis g in
  check_int "exactly one" 1 (Bitset.cardinal (mis_set_of_outputs result.Runtime.outputs))

let test_luby_on_edgeless () =
  let g = Graph.create 7 in
  let result = Runtime.run Congest.Algo_luby.mis g in
  check_int "everyone" 7 (Bitset.cardinal (mis_set_of_outputs result.Runtime.outputs))

let test_luby_rounds_logarithmic_ish () =
  (* Not a proof, just a regression guard: on a 60-node random graph the
     run should finish far sooner than the n-round worst case. *)
  let rng = Prng.create 5 in
  let g = Build.erdos_renyi rng 60 0.1 in
  let result = Runtime.run Congest.Algo_luby.mis g in
  check "fast" true (result.Runtime.rounds_executed < 60)

let test_greedy_mis_valid () =
  let rng = Prng.create 53 in
  for _ = 1 to 8 do
    let g = Build.erdos_renyi rng 22 0.25 in
    Build.random_weights rng g 6;
    let result = Runtime.run Congest.Algo_greedy_mis.mis g in
    let s = mis_set_of_outputs result.Runtime.outputs in
    check "independent" true (Wgraph.Check.is_independent g s);
    check "maximal" true (Wgraph.Check.is_maximal_independent g s)
  done

let test_greedy_mis_prefers_heavy () =
  (* Star with heavy center: the center must win. *)
  let g = Build.star 6 in
  Graph.set_weight g 0 50;
  let result = Runtime.run Congest.Algo_greedy_mis.mis g in
  Alcotest.(check (option bool)) "center in" (Some true) result.Runtime.outputs.(0)

let test_greedy_mis_deterministic () =
  let rng = Prng.create 54 in
  let g = Build.erdos_renyi rng 20 0.3 in
  Build.random_weights rng g 5;
  let r1 = Runtime.run Congest.Algo_greedy_mis.mis g in
  let r2 =
    Runtime.run
      ~config:{ Runtime.default_config with Runtime.seed = 999 }
      Congest.Algo_greedy_mis.mis g
  in
  (* weight-based priorities do not consult the rng: seed must not matter *)
  check "seed-independent" true (r1.Runtime.outputs = r2.Runtime.outputs)

(* ------------------------------------------------------------------ *)
(* Algorithms: gather *)

let test_gather_reconstructs () =
  let rng = Prng.create 61 in
  let g = Build.erdos_renyi rng 12 0.4 in
  Build.random_weights rng g 3;
  if Wgraph.Metrics.is_connected g then begin
    let m = Graph.edge_count g in
    let expected = Mis.Exact.opt g in
    let result = Runtime.run (Congest.Algo_gather.exact_maxis ~m) g in
    check "halted" true result.Runtime.all_halted;
    Array.iter
      (fun o -> Alcotest.(check (option int)) "every node agrees on OPT" (Some expected) o)
      result.Runtime.outputs
  end
  else Alcotest.fail "test graph should be connected (fix seed)"

let test_gather_generic_solver () =
  (* Use gather with a different local solve: count edges. *)
  let g = Build.cycle 9 in
  let m = Graph.edge_count g in
  let program = Congest.Algo_gather.gather ~m ~solve:Graph.edge_count in
  let result = Runtime.run program g in
  Array.iter
    (fun o -> Alcotest.(check (option int)) "edge count" (Some 9) o)
    result.Runtime.outputs

let test_gather_respects_bandwidth () =
  (* The gather program must never trip the bandwidth checker (the runtime
     would raise). *)
  let g = Build.complete 8 in
  let m = Graph.edge_count g in
  let result = Runtime.run (Congest.Algo_gather.exact_maxis ~m) g in
  check "finished" true result.Runtime.all_halted;
  check "max per edge round within limit" true
    (Trace.max_bits_per_edge_round result.Runtime.trace
    <= Runtime.bandwidth_bits Runtime.default_config ~n:8)

let test_gather_rounds_scale () =
  (* O(m + D) rounds: on a path (m = n-1) the run should finish within a
     small multiple of n. *)
  let g = Build.path 12 in
  let result = Runtime.run (Congest.Algo_gather.exact_maxis ~m:11) g in
  check "halted" true result.Runtime.all_halted;
  check "rounds bounded" true (result.Runtime.rounds_executed <= 4 * (11 + 12))

let prop_luby_always_valid =
  QCheck.Test.make ~name:"Luby always returns a maximal IS" ~count:30
    QCheck.(pair small_int small_int) (fun (seed, nn) ->
      let n = 3 + (nn mod 15) in
      let rng = Prng.create seed in
      let g = Build.erdos_renyi rng n 0.3 in
      let config = { Runtime.default_config with Runtime.seed = seed } in
      let result = Runtime.run ~config Congest.Algo_luby.mis g in
      let s = mis_set_of_outputs result.Runtime.outputs in
      result.Runtime.all_halted
      && Wgraph.Check.is_independent g s
      && Wgraph.Check.is_maximal_independent g s)

let prop_gather_matches_exact =
  QCheck.Test.make ~name:"gather-MaxIS agrees with sequential exact" ~count:15
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let g = Build.erdos_renyi rng 10 0.5 in
      Build.random_weights rng g 4;
      (not (Wgraph.Metrics.is_connected g))
      ||
      let m = Graph.edge_count g in
      let result = Runtime.run (Congest.Algo_gather.exact_maxis ~m) g in
      Array.for_all (fun o -> o = Some (Mis.Exact.opt g)) result.Runtime.outputs)

(* ------------------------------------------------------------------ *)
(* Algorithms: coloring and matching *)

let proper_coloring g outputs =
  let ok = ref true in
  Graph.iter_edges
    (fun u v -> if outputs.(u) = outputs.(v) && outputs.(u) <> None then ok := false)
    g;
  !ok
  && Array.for_all (fun o -> o <> None) outputs

let test_coloring_valid () =
  let rng = Prng.create 71 in
  for trial = 1 to 8 do
    let g = Build.erdos_renyi rng 24 0.25 in
    let config = { Runtime.default_config with Runtime.seed = trial } in
    let result = Runtime.run ~config Congest.Algo_coloring.color g in
    check "halted" true result.Runtime.all_halted;
    check "proper" true (proper_coloring g result.Runtime.outputs);
    (* palette bound: color of v <= deg(v) *)
    Array.iteri
      (fun v o ->
        match o with
        | Some c -> check "within palette" true (c >= 0 && c <= Graph.degree g v)
        | None -> Alcotest.fail "uncolored node")
      result.Runtime.outputs
  done

let test_coloring_clique () =
  (* K_n needs all n colors. *)
  let g = Build.complete 7 in
  let result = Runtime.run Congest.Algo_coloring.color g in
  let colors =
    Array.to_list result.Runtime.outputs
    |> List.filter_map Fun.id
    |> List.sort_uniq compare
  in
  check_int "all distinct" 7 (List.length colors)

let test_coloring_edgeless () =
  let g = Graph.create 5 in
  let result = Runtime.run Congest.Algo_coloring.color g in
  Array.iter
    (fun o -> Alcotest.(check (option int)) "color 0" (Some 0) o)
    result.Runtime.outputs

let matching_pairs outputs =
  let pairs = ref [] in
  Array.iteri
    (fun u o -> match o with Some v when u < v -> pairs := (u, v) :: !pairs | _ -> ())
    outputs;
  !pairs

let test_matching_valid_and_maximal () =
  let rng = Prng.create 73 in
  for trial = 1 to 8 do
    let g = Build.erdos_renyi rng 20 0.3 in
    let config = { Runtime.default_config with Runtime.seed = 100 + trial } in
    let result = Runtime.run ~config Congest.Algo_matching.maximal_matching g in
    check "halted" true result.Runtime.all_halted;
    let outputs = result.Runtime.outputs in
    (* symmetry: u's partner points back *)
    Array.iteri
      (fun u o ->
        match o with
        | Some v -> (
            check "edge exists" true (Graph.has_edge g u v);
            match outputs.(v) with
            | Some u' -> check_int "symmetric" u u'
            | None -> Alcotest.fail "partner unmatched")
        | None -> ())
      outputs;
    check "is matching" true (Wgraph.Matching.is_matching g (matching_pairs outputs));
    (* maximality: no edge with both endpoints unmatched *)
    let maximal = ref true in
    Graph.iter_edges
      (fun u v -> if outputs.(u) = None && outputs.(v) = None then maximal := false)
      g;
    check "maximal" true !maximal
  done

let test_matching_single_edge () =
  let g = Build.path 2 in
  let result = Runtime.run Congest.Algo_matching.maximal_matching g in
  Alcotest.(check (option int)) "0-1 matched" (Some 1) result.Runtime.outputs.(0);
  Alcotest.(check (option int)) "1-0 matched" (Some 0) result.Runtime.outputs.(1)

let test_matching_star () =
  (* Star: exactly one leaf gets the center. *)
  let g = Build.star 6 in
  let result = Runtime.run Congest.Algo_matching.maximal_matching g in
  check_int "one pair" 1 (List.length (matching_pairs result.Runtime.outputs));
  check "center matched" true (result.Runtime.outputs.(0) <> None)

let prop_coloring_always_proper =
  QCheck.Test.make ~name:"coloring always proper" ~count:25
    QCheck.(pair small_int small_int) (fun (seed, nn) ->
      let n = 2 + (nn mod 14) in
      let rng = Prng.create seed in
      let g = Build.erdos_renyi rng n 0.35 in
      let config = { Runtime.default_config with Runtime.seed = seed } in
      let result = Runtime.run ~config Congest.Algo_coloring.color g in
      result.Runtime.all_halted && proper_coloring g result.Runtime.outputs)

let prop_matching_always_maximal =
  QCheck.Test.make ~name:"matching always maximal" ~count:25
    QCheck.(pair small_int small_int) (fun (seed, nn) ->
      let n = 2 + (nn mod 14) in
      let rng = Prng.create seed in
      let g = Build.erdos_renyi rng n 0.35 in
      let config = { Runtime.default_config with Runtime.seed = seed } in
      let result = Runtime.run ~config Congest.Algo_matching.maximal_matching g in
      let outputs = result.Runtime.outputs in
      let maximal = ref true in
      Graph.iter_edges
        (fun u v -> if outputs.(u) = None && outputs.(v) = None then maximal := false)
        g;
      result.Runtime.all_halted
      && Wgraph.Matching.is_matching g (matching_pairs outputs)
      && !maximal)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "congest"
    [
      ( "msg",
        [
          Alcotest.test_case "sizes" `Quick test_msg_sizes;
          Alcotest.test_case "overflow" `Quick test_msg_overflow_rejected;
          Alcotest.test_case "id width" `Quick test_id_width;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "delivery next round" `Quick test_delivery_next_round;
          Alcotest.test_case "trace accounting" `Quick test_trace_accounting;
          Alcotest.test_case "bandwidth enforced" `Quick test_bandwidth_enforced;
          Alcotest.test_case "illegal recipient" `Quick test_illegal_recipient;
          Alcotest.test_case "broadcast uniformity" `Quick test_broadcast_mode_uniformity;
          Alcotest.test_case "broadcast uniform ok" `Quick test_broadcast_mode_uniform_ok;
          Alcotest.test_case "max rounds cutoff" `Quick test_max_rounds_cutoff;
          Alcotest.test_case "halted stays halted" `Quick test_halted_node_receives_nothing;
          Alcotest.test_case "bfs disconnected" `Quick test_bfs_disconnected;
          Alcotest.test_case "determinism" `Quick test_determinism_same_seed;
        ] );
      ( "flood-bfs",
        [
          Alcotest.test_case "max id flood" `Quick test_max_id_flood;
          Alcotest.test_case "too few rounds" `Quick test_max_id_flood_too_few_rounds;
          Alcotest.test_case "leader election" `Quick test_leader_election;
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "bfs random" `Quick test_bfs_on_random_connected;
          Alcotest.test_case "bfs rounds" `Quick test_bfs_rounds_near_diameter;
        ] );
      ( "mis-algorithms",
        [
          Alcotest.test_case "luby valid" `Quick test_luby_valid_mis;
          Alcotest.test_case "luby clique" `Quick test_luby_on_clique;
          Alcotest.test_case "luby edgeless" `Quick test_luby_on_edgeless;
          Alcotest.test_case "luby fast" `Quick test_luby_rounds_logarithmic_ish;
          Alcotest.test_case "greedy valid" `Quick test_greedy_mis_valid;
          Alcotest.test_case "greedy heavy center" `Quick test_greedy_mis_prefers_heavy;
          Alcotest.test_case "greedy deterministic" `Quick test_greedy_mis_deterministic;
        ] );
      ( "gather",
        [
          Alcotest.test_case "reconstructs" `Quick test_gather_reconstructs;
          Alcotest.test_case "generic solver" `Quick test_gather_generic_solver;
          Alcotest.test_case "bandwidth" `Quick test_gather_respects_bandwidth;
          Alcotest.test_case "rounds scale" `Quick test_gather_rounds_scale;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "valid" `Quick test_coloring_valid;
          Alcotest.test_case "clique" `Quick test_coloring_clique;
          Alcotest.test_case "edgeless" `Quick test_coloring_edgeless;
        ] );
      ( "matching",
        [
          Alcotest.test_case "valid + maximal" `Quick test_matching_valid_and_maximal;
          Alcotest.test_case "single edge" `Quick test_matching_single_edge;
          Alcotest.test_case "star" `Quick test_matching_star;
        ] );
      qsuite "congest-props"
        [
          prop_luby_always_valid;
          prop_gather_matches_exact;
          prop_coloring_always_proper;
          prop_matching_always_maximal;
        ];
    ]
