(* Tests for the communication-complexity substrate: inputs, blackboard,
   functions, protocols, bounds. *)

module Inputs = Commcx.Inputs
module Blackboard = Commcx.Blackboard
module Functions = Commcx.Functions
module Protocol = Commcx.Protocol
module BP = Commcx.Baseline_protocols
module Bitset = Stdx.Bitset
module Prng = Stdx.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_inputs_make () =
  let x = Inputs.of_bit_lists ~k:8 [ [ 0; 3 ]; [ 1; 3 ]; [ 3; 7 ] ] in
  check_int "players" 3 (Inputs.t_players x);
  check "bit" true (Inputs.bit x ~player:0 3);
  check "bit off" false (Inputs.bit x ~player:0 1);
  Alcotest.check_raises "bad player"
    (Invalid_argument "Inputs.string_of_player: bad player index") (fun () ->
      ignore (Inputs.string_of_player x 3))

let test_inputs_capacity_checked () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Inputs.make: string capacity differs from k") (fun () ->
      ignore (Inputs.make ~k:4 [ Bitset.create 5 ]))

let test_pairwise_disjoint () =
  let disjoint = Inputs.of_bit_lists ~k:9 [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ] in
  check "disjoint" true (Inputs.pairwise_disjoint disjoint);
  let touching = Inputs.of_bit_lists ~k:9 [ [ 0; 1 ]; [ 1; 2 ]; [ 4 ] ] in
  check "pair collides" false (Inputs.pairwise_disjoint touching)

let test_uniquely_intersecting () =
  let x = Inputs.of_bit_lists ~k:9 [ [ 0; 5 ]; [ 1; 5 ]; [ 5; 7 ] ] in
  Alcotest.(check (option int)) "common" (Some 5) (Inputs.uniquely_intersecting x);
  let y = Inputs.of_bit_lists ~k:9 [ [ 0 ]; [ 0 ]; [ 1 ] ] in
  Alcotest.(check (option int)) "no common" None (Inputs.uniquely_intersecting y)

let test_promise () =
  let good = Inputs.of_bit_lists ~k:9 [ [ 0; 5 ]; [ 1; 5 ]; [ 5 ] ] in
  check "good promise" true (Inputs.satisfies_promise good);
  let bad = Inputs.of_bit_lists ~k:9 [ [ 0; 5 ]; [ 0; 5 ]; [ 5 ] ] in
  check "bad promise" false (Inputs.satisfies_promise bad);
  let disj = Inputs.of_bit_lists ~k:9 [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  check "disjoint promise" true (Inputs.satisfies_promise disj)

let test_generators_respect_promise () =
  let rng = Prng.create 3 in
  for t = 2 to 5 do
    for _ = 1 to 20 do
      let xi = Inputs.gen_promise rng ~k:40 ~t ~intersecting:true in
      check "intersecting valid" true (Inputs.satisfies_promise xi);
      check "has common" true (Inputs.uniquely_intersecting xi <> None);
      let xd = Inputs.gen_promise rng ~k:40 ~t ~intersecting:false in
      check "disjoint valid" true (Inputs.pairwise_disjoint xd);
      check "no common" true (Inputs.uniquely_intersecting xd = None)
    done
  done

let test_generator_ones_count () =
  let rng = Prng.create 5 in
  let x = Inputs.gen_pairwise_disjoint rng ~k:30 ~t:3 ~ones_per_player:4 in
  for i = 0 to 2 do
    check_int "ones" 4 (Bitset.cardinal (Inputs.string_of_player x i))
  done;
  let y = Inputs.gen_uniquely_intersecting rng ~k:30 ~t:3 ~ones_per_player:4 in
  for i = 0 to 2 do
    check_int "ones w/ common" 4 (Bitset.cardinal (Inputs.string_of_player y i))
  done

let test_generator_bounds () =
  let rng = Prng.create 5 in
  Alcotest.check_raises "too dense"
    (Invalid_argument "Inputs.gen_pairwise_disjoint: not enough indices")
    (fun () -> ignore (Inputs.gen_pairwise_disjoint rng ~k:5 ~t:3 ~ones_per_player:2));
  Alcotest.check_raises "zero ones"
    (Invalid_argument "Inputs.gen_uniquely_intersecting: need >= 1 one per player")
    (fun () -> ignore (Inputs.gen_uniquely_intersecting rng ~k:5 ~t:2 ~ones_per_player:0))

let prop_generated_promises_valid =
  QCheck.Test.make ~name:"generators always satisfy the promise" ~count:100
    QCheck.(triple small_int small_int bool) (fun (seed, tt, inter) ->
      let t = 2 + (tt mod 4) in
      let rng = Prng.create seed in
      let x = Inputs.gen_promise rng ~k:(8 * t) ~t ~intersecting:inter in
      Inputs.satisfies_promise x
      && (Inputs.uniquely_intersecting x <> None) = inter)

let test_blackboard_accounting () =
  let b = Blackboard.create () in
  check_int "empty" 0 (Blackboard.bits_written b);
  Blackboard.write b ~author:0 ~bits:5 ~tag:"a" 17;
  Blackboard.write b ~author:1 ~bits:7 ~tag:"b" 99;
  Blackboard.write b ~author:0 ~bits:3 ~tag:"a" 2;
  check_int "total" 15 (Blackboard.bits_written b);
  check_int "writes" 3 (Blackboard.writes b);
  Alcotest.(check (list (pair int int))) "by author" [ (0, 8); (1, 7) ]
    (Blackboard.bits_by_author b);
  (match Blackboard.read_last b ~tag:"a" with
  | Some e -> check_int "last a" 2 e.Blackboard.value
  | None -> Alcotest.fail "tag a missing");
  check "no tag" true (Blackboard.read_last b ~tag:"zzz" = None);
  Alcotest.check_raises "negative bits"
    (Invalid_argument "Blackboard.write: negative bit count") (fun () ->
      Blackboard.write b ~author:0 ~bits:(-1) 0)

let test_blackboard_payload_fits () =
  check "fits" true
    (Blackboard.check_payload_fits { author = 0; bits = 5; value = 31; tag = "" });
  check "does not fit" false
    (Blackboard.check_payload_fits { author = 0; bits = 5; value = 32; tag = "" });
  check "wide" true
    (Blackboard.check_payload_fits { author = 0; bits = 63; value = max_int; tag = "" })

let test_blackboard_entry_order () =
  let b = Blackboard.create () in
  Blackboard.write b ~author:0 ~bits:1 1;
  Blackboard.write b ~author:1 ~bits:1 2;
  Alcotest.(check (list int)) "ordered" [ 1; 2 ]
    (List.map (fun (e : Blackboard.entry) -> e.Blackboard.value) (Blackboard.entries b))

let test_two_party_disjointness () =
  let d = Inputs.of_bit_lists ~k:4 [ [ 0 ]; [ 1 ] ] in
  check "disjoint" true (Functions.two_party_disjointness d);
  let i = Inputs.of_bit_lists ~k:4 [ [ 0; 2 ]; [ 2 ] ] in
  check "intersect" false (Functions.two_party_disjointness i);
  let three = Inputs.of_bit_lists ~k:4 [ []; []; [] ] in
  Alcotest.check_raises "three players"
    (Invalid_argument "Functions.two_party_disjointness: need exactly 2 players")
    (fun () -> ignore (Functions.two_party_disjointness three))

let test_multiparty_disjointness () =
  let no_common = Inputs.of_bit_lists ~k:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] in
  check "pairwise hits but no common index" true
    (Functions.multiparty_disjointness no_common);
  let common = Inputs.of_bit_lists ~k:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 1 ] ] in
  check "common" false (Functions.multiparty_disjointness common)

let test_promise_function () =
  let disj = Inputs.of_bit_lists ~k:4 [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  check "TRUE on disjoint" true (Functions.promise_pairwise_disjointness disj);
  let inter = Inputs.of_bit_lists ~k:4 [ [ 3 ]; [ 3 ]; [ 3 ] ] in
  check "FALSE on intersecting" false (Functions.promise_pairwise_disjointness inter);
  let invalid = Inputs.of_bit_lists ~k:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2 ] ] in
  Alcotest.check_raises "off promise"
    (Invalid_argument "Functions.promise_pairwise_disjointness: input violates the promise")
    (fun () -> ignore (Functions.promise_pairwise_disjointness invalid))

let promise_inputs seed ~k ~t ~count =
  let rng = Prng.create seed in
  List.init count (fun i ->
      Inputs.gen_promise rng ~k ~t ~intersecting:(i mod 2 = 0))

let test_protocols_correct () =
  let k = 24 and t = 3 in
  let inputs = promise_inputs 11 ~k ~t ~count:30 in
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (p.Protocol.name ^ " accuracy") 1.0
        (Protocol.accuracy p Functions.promise_pairwise_disjointness inputs))
    (BP.all ~k)

let test_exchange_everything_cost () =
  let k = 24 and t = 3 in
  let x = List.hd (promise_inputs 7 ~k ~t ~count:1) in
  let o = Protocol.execute BP.exchange_everything x in
  check_int "t*k bits" (t * k) o.Protocol.bits

let test_sparse_encoding_cheaper_on_sparse () =
  let k = 64 and t = 4 in
  let rng = Prng.create 9 in
  let x = Inputs.gen_pairwise_disjoint rng ~k ~t ~ones_per_player:2 in
  let dense = (Protocol.execute BP.exchange_everything x).Protocol.bits in
  let sparse = (Protocol.execute (BP.sparse_encoding ~k) x).Protocol.bits in
  check "sparse cheaper" true (sparse < dense)

let test_sequential_intersect_collapses () =
  let k = 64 and t = 5 in
  let rng = Prng.create 13 in
  let x = Inputs.gen_uniquely_intersecting rng ~k ~t ~ones_per_player:4 in
  let o = Protocol.execute (BP.sequential_intersect ~k) x in
  check "answer false (intersecting)" false o.Protocol.answer;
  check "cheap" true (o.Protocol.bits < t * k)

let test_worst_case_bits () =
  let k = 16 and t = 2 in
  let inputs = promise_inputs 17 ~k ~t ~count:10 in
  check_int "worst case of constant-cost protocol" (t * k)
    (Protocol.worst_case_bits BP.exchange_everything inputs)

let prop_protocols_never_beat_bound =
  QCheck.Test.make ~name:"implemented protocols cost >= CC bound" ~count:20
    QCheck.small_int (fun seed ->
      let k = 60 and t = 3 in
      let inputs = promise_inputs seed ~k ~t ~count:16 in
      let bound =
        Commcx.Cc_bounds.eval_bits Commcx.Cc_bounds.promise_pairwise_disjointness ~k ~t
      in
      List.for_all
        (fun p -> float_of_int (Protocol.worst_case_bits p inputs) >= bound)
        (BP.all ~k))

let test_bound_formulas () =
  Alcotest.(check (float 1e-9)) "two party" 100.0
    (Commcx.Cc_bounds.eval_bits Commcx.Cc_bounds.two_party_disjointness ~k:100 ~t:2);
  Alcotest.(check (float 1e-9)) "promise t=2" 50.0
    (Commcx.Cc_bounds.eval_bits Commcx.Cc_bounds.promise_pairwise_disjointness ~k:100 ~t:2);
  Alcotest.(check (float 1e-9)) "promise t=4" 12.5
    (Commcx.Cc_bounds.eval_bits Commcx.Cc_bounds.promise_pairwise_disjointness ~k:100 ~t:4)

let test_bound_monotone_in_t () =
  let b = Commcx.Cc_bounds.promise_pairwise_disjointness in
  let prev = ref infinity in
  for t = 2 to 10 do
    let v = Commcx.Cc_bounds.eval_bits b ~k:1000 ~t in
    check "decreasing in t" true (v <= !prev);
    prev := v
  done

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "commcx"
    [
      ( "inputs",
        [
          Alcotest.test_case "make" `Quick test_inputs_make;
          Alcotest.test_case "capacity" `Quick test_inputs_capacity_checked;
          Alcotest.test_case "pairwise disjoint" `Quick test_pairwise_disjoint;
          Alcotest.test_case "uniquely intersecting" `Quick test_uniquely_intersecting;
          Alcotest.test_case "promise" `Quick test_promise;
          Alcotest.test_case "generators respect promise" `Quick
            test_generators_respect_promise;
          Alcotest.test_case "ones count" `Quick test_generator_ones_count;
          Alcotest.test_case "generator bounds" `Quick test_generator_bounds;
        ] );
      qsuite "inputs-props" [ prop_generated_promises_valid ];
      ( "blackboard",
        [
          Alcotest.test_case "accounting" `Quick test_blackboard_accounting;
          Alcotest.test_case "payload fits" `Quick test_blackboard_payload_fits;
          Alcotest.test_case "entry order" `Quick test_blackboard_entry_order;
        ] );
      ( "functions",
        [
          Alcotest.test_case "two-party" `Quick test_two_party_disjointness;
          Alcotest.test_case "multiparty" `Quick test_multiparty_disjointness;
          Alcotest.test_case "promise function" `Quick test_promise_function;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "all correct on promise" `Quick test_protocols_correct;
          Alcotest.test_case "exchange-everything cost" `Quick test_exchange_everything_cost;
          Alcotest.test_case "sparse cheaper" `Quick test_sparse_encoding_cheaper_on_sparse;
          Alcotest.test_case "sequential collapses" `Quick test_sequential_intersect_collapses;
          Alcotest.test_case "worst case bits" `Quick test_worst_case_bits;
        ] );
      qsuite "protocol-props" [ prop_protocols_never_beat_bound ];
      ( "bounds",
        [
          Alcotest.test_case "formulas" `Quick test_bound_formulas;
          Alcotest.test_case "monotone in t" `Quick test_bound_monotone_in_t;
        ] );
    ]
