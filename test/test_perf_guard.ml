(* Allocation-regression guard for the zero-allocation CONGEST hot path.

   [Runtime.run_flat] stages messages in preallocated int buffers and the
   Light trace streams scalars, so once buffer sizes settle a round
   allocates (next to) nothing on the minor heap.  Any per-message record,
   tuple or cons creeping back into the hot path shows up as thousands of
   minor words per round — orders of magnitude above the pinned ceiling.

   Methodology: flood on a cycle propagates for ~n/2 rounds at 2 messages
   per node per round, so two runs of the same workload differing only in
   round count isolate the steady-state per-round cost — spawn cost,
   buffer growth and the measurement harness cancel in the difference. *)

module Build = Wgraph.Build
module Csr = Wgraph.Csr

let cycle_csr n = Csr.of_graph (Build.cycle n)

let minor_words_for rounds c =
  let config =
    { Congest.Runtime.default_config with Congest.Runtime.max_rounds = rounds }
  in
  let fp = Congest.Fastpath.max_id ~rounds in
  let trace = Congest.Trace.create ~mode:Congest.Trace.Light () in
  let before = Gc.minor_words () in
  let result = Congest.Runtime.run_flat ~config ~trace fp c in
  let after = Gc.minor_words () in
  Alcotest.(check int) "ran all rounds" rounds result.Congest.Runtime.rounds_executed;
  after -. before

(* The cycle is long enough that the max id is still propagating in every
   measured round: message volume stays at 2 per node per round. *)
let n = 512
let short_rounds = 40
let long_rounds = 200

(* Ceiling in minor words per steady-state round.  The true settled cost
   is ~0; 256 gives slack for GC bookkeeping while staying far below the
   ~3 words x 1024 messages a single per-message allocation would add. *)
let ceiling_words_per_round = 256.0

let test_flat_alloc_per_round () =
  let c = cycle_csr n in
  (* Warm-up run settles shared metric handles and any lazy state. *)
  ignore (minor_words_for 8 c);
  let short = minor_words_for short_rounds c in
  let long = minor_words_for long_rounds c in
  let per_round =
    (long -. short) /. float_of_int (long_rounds - short_rounds)
  in
  if per_round > ceiling_words_per_round then
    Alcotest.failf
      "flat hot path allocates %.1f minor words/round (ceiling %.0f): a \
       per-message allocation has crept back in"
      per_round ceiling_words_per_round

(* The sharded executor must hold the same bar per domain: once arenas
   settle, a shard's stage phase allocates nothing.  [alloc_probe]
   accumulates each shard's own minor-word delta around its stage body
   (measured on the domain that ran the chunk — minor heaps are
   per-domain), so the long-minus-short difference isolates the settled
   per-round cost of every shard at once.  The per-domain ceiling is
   tighter than the whole-run one: a shard touches only its node range,
   so there is even less bookkeeping to hide behind. *)
let per_domain_ceiling = 64.0

let par_minor_words_for pool probe rounds c =
  Array.fill probe 0 (Array.length probe) 0.0;
  let config =
    { Congest.Runtime.default_config with Congest.Runtime.max_rounds = rounds }
  in
  let fp = Congest.Fastpath.max_id ~rounds in
  let trace = Congest.Trace.create ~mode:Congest.Trace.Light () in
  let result =
    Congest.Runtime.run_flat_par ~config ~trace ~alloc_probe:probe ~pool fp c
  in
  Alcotest.(check int)
    "ran all rounds" rounds result.Congest.Runtime.rounds_executed;
  Array.copy probe

let test_par_stage_alloc_per_round () =
  let c = cycle_csr n in
  let jobs = 4 in
  Exec.Pool.with_pool ~jobs (fun pool ->
      let probe = Array.make jobs 0.0 in
      ignore (par_minor_words_for pool probe 8 c);
      let short = par_minor_words_for pool probe short_rounds c in
      let long = par_minor_words_for pool probe long_rounds c in
      let dr = float_of_int (long_rounds - short_rounds) in
      Array.iteri
        (fun s _ ->
          let per_round = (long.(s) -. short.(s)) /. dr in
          if per_round > per_domain_ceiling then
            Alcotest.failf
              "shard %d of %d stages %.1f minor words/round (ceiling %.0f): \
               the parallel stage phase is no longer allocation-free"
              s jobs per_round per_domain_ceiling)
        probe)

(* The list-mode arena is not zero-allocation (Program.step speaks in
   lists), but it must stay linear in delivered messages — the historical
   per-round hashtable resets and sort allocations are gone.  ~28 words
   per message (cons + tuple + Msg + arena slack) is generous; the guard
   catches anything quadratic or a new per-round O(n) term. *)
let test_list_alloc_per_message () =
  let g = Build.cycle n in
  let rounds = 120 in
  let config =
    { Congest.Runtime.default_config with Congest.Runtime.max_rounds = rounds }
  in
  let prog = Congest.Algo_flood.max_id ~rounds in
  ignore (Congest.Runtime.run ~config prog g);
  let before = Gc.minor_words () in
  let result = Congest.Runtime.run ~config prog g in
  let after = Gc.minor_words () in
  let msgs =
    Congest.Trace.total_messages result.Congest.Runtime.trace
  in
  let per_msg = (after -. before) /. float_of_int (max msgs 1) in
  if per_msg > 60.0 then
    Alcotest.failf "list-mode path allocates %.1f minor words/message" per_msg

let () =
  Alcotest.run "perf_guard"
    [
      ( "allocation",
        [
          Alcotest.test_case "flat rounds are allocation-free" `Quick
            test_flat_alloc_per_round;
          Alcotest.test_case "sharded stage phase is allocation-free" `Quick
            test_par_stage_alloc_per_round;
          Alcotest.test_case "list mode stays linear" `Quick
            test_list_alloc_per_message;
        ] );
    ]
