(* Property suite (qcheck): the repo's foundations checked against
   independent reference models.

   - Bitset set algebra vs OCaml's Set.Make(Int) on the same elements,
   - Dynvec push/get/set round-trips vs plain lists,
   - Prng determinism and split independence,
   - Stats.percentile monotonicity under the NaN-safe total order,
   - Exact.solve vs Brute.solve (subset enumeration) on random weighted
     graphs of up to 14 vertices — the strongest oracle we have for the
     branch-and-bound solver.

   Each property runs a few hundred random cases in the default
   `dune runtest`; counterexamples print via the generators' [~print]. *)

module Bitset = Stdx.Bitset
module Dynvec = Stdx.Dynvec
module Prng = Stdx.Prng
module Stats = Stdx.Stats
module Graph = Wgraph.Graph
module Build = Wgraph.Build
module IntSet = Set.Make (Int)

let cap = 100

(* ------------------------------------------------------------------ *)
(* Generators *)

let pp_ints l = String.concat "," (List.map string_of_int l)

let gen_elts =
  QCheck.make ~print:pp_ints
    QCheck.Gen.(list_size (int_bound 40) (int_bound (cap - 1)))

let gen_pair = QCheck.pair gen_elts gen_elts

let set_of l = Bitset.of_list cap l

let ref_of l = IntSet.of_list l

(* A bitset agrees with a reference set iff their sorted element lists
   match; capacities are all [cap] so complement is well-defined. *)
let agrees bs rs = Bitset.elements bs = IntSet.elements rs

let full_ref = ref_of (List.init cap Fun.id)

(* ------------------------------------------------------------------ *)
(* Bitset vs Set.Make(Int) *)

let t name count gen f = QCheck.Test.make ~name ~count gen f

let prop_union =
  t "bitset union = reference union" 300 gen_pair (fun (la, lb) ->
      agrees (Bitset.union (set_of la) (set_of lb))
        (IntSet.union (ref_of la) (ref_of lb)))

let prop_inter =
  t "bitset inter = reference inter" 300 gen_pair (fun (la, lb) ->
      agrees (Bitset.inter (set_of la) (set_of lb))
        (IntSet.inter (ref_of la) (ref_of lb)))

let prop_diff =
  t "bitset diff = reference diff" 300 gen_pair (fun (la, lb) ->
      agrees (Bitset.diff (set_of la) (set_of lb))
        (IntSet.diff (ref_of la) (ref_of lb)))

let prop_complement =
  t "bitset complement = reference complement" 300 gen_elts (fun l ->
      agrees (Bitset.complement (set_of l)) (IntSet.diff full_ref (ref_of l)))

let prop_subset =
  t "bitset subset agrees with reference" 300 gen_pair (fun (la, lb) ->
      Bitset.subset (set_of la) (set_of lb)
      = IntSet.subset (ref_of la) (ref_of lb))

let prop_disjoint =
  t "bitset disjoint agrees with reference" 300 gen_pair (fun (la, lb) ->
      Bitset.disjoint (set_of la) (set_of lb)
      = IntSet.disjoint (ref_of la) (ref_of lb))

let prop_inter_cardinal =
  t "bitset inter_cardinal = |A inter B|" 300 gen_pair (fun (la, lb) ->
      Bitset.inter_cardinal (set_of la) (set_of lb)
      = IntSet.cardinal (IntSet.inter (ref_of la) (ref_of lb)))

let prop_in_place =
  t "bitset in-place ops = allocating ops" 300 gen_pair (fun (la, lb) ->
      let check op op_in_place =
        let a = set_of la and b = set_of lb in
        let expect = op a b in
        op_in_place a b;
        Bitset.equal a expect
      in
      check Bitset.union Bitset.union_in_place
      && check Bitset.inter Bitset.inter_in_place
      && check Bitset.diff Bitset.diff_in_place)

let prop_add_remove =
  t "bitset add/remove membership round-trip" 300
    (QCheck.pair gen_elts (QCheck.int_bound (cap - 1)))
    (fun (l, i) ->
      let s = set_of l in
      Bitset.add s i;
      let after_add = Bitset.mem s i in
      Bitset.remove s i;
      after_add && not (Bitset.mem s i))

let prop_fold_sorted =
  t "bitset fold visits members in increasing order" 300 gen_elts (fun l ->
      let visited = List.rev (Bitset.fold List.cons (set_of l) []) in
      visited = IntSet.elements (ref_of l))

(* ------------------------------------------------------------------ *)
(* Dynvec vs list *)

let prop_dynvec_push_get =
  t "dynvec push/get round-trip" 300 gen_elts (fun l ->
      let v = Dynvec.create () in
      List.iter (Dynvec.push v) l;
      Dynvec.length v = List.length l
      && List.for_all2
           (fun i x -> Dynvec.get v i = x)
           (List.init (List.length l) Fun.id)
           l)

let prop_dynvec_to_list =
  t "dynvec to_list/to_array preserve push order" 300 gen_elts (fun l ->
      let v = Dynvec.create () in
      List.iter (Dynvec.push v) l;
      Dynvec.to_list v = l && Array.to_list (Dynvec.to_array v) = l)

let prop_dynvec_set_get =
  t "dynvec set/get round-trip" 300
    QCheck.(
      pair
        (make ~print:pp_ints Gen.(list_size (int_range 1 40) (int_bound 99)))
        (pair small_nat small_nat))
    (fun (l, (i, x)) ->
      let v = Dynvec.create () in
      List.iter (Dynvec.push v) l;
      let i = i mod List.length l in
      Dynvec.set v i x;
      Dynvec.get v i = x
      && List.for_all
           (fun j -> j = i || Dynvec.get v j = List.nth l j)
           (List.init (List.length l) Fun.id))

(* ------------------------------------------------------------------ *)
(* Prng *)

let prop_prng_deterministic =
  t "prng same seed => same stream" 100 QCheck.small_int (fun seed ->
      let a = Prng.create seed and b = Prng.create seed in
      List.init 50 (fun _ -> Prng.int64 a) = List.init 50 (fun _ -> Prng.int64 b))

let prop_prng_split_deterministic =
  t "prng split is deterministic" 100 QCheck.small_int (fun seed ->
      let child seed' =
        let g = Prng.create seed' in
        let c = Prng.split g in
        List.init 20 (fun _ -> Prng.int64 c)
      in
      child seed = child seed)

let prop_prng_split_independent =
  t "prng split child diverges from parent continuation" 100 QCheck.small_int
    (fun seed ->
      let g = Prng.create seed in
      let c = Prng.split g in
      let parent = List.init 20 (fun _ -> Prng.int64 g) in
      let child = List.init 20 (fun _ -> Prng.int64 c) in
      parent <> child)

let prop_prng_int_bounds =
  t "prng int lands in [0, bound)" 200
    (QCheck.pair QCheck.small_int (QCheck.int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      List.for_all
        (fun _ ->
          let v = Prng.int g bound in
          0 <= v && v < bound)
        (List.init 100 Fun.id))

let prop_prng_sample =
  t "prng sample_without_replacement sorted distinct in range" 200
    (QCheck.pair QCheck.small_int (QCheck.int_range 1 50))
    (fun (seed, n) ->
      let g = Prng.create seed in
      let m = Prng.int g (n + 1) in
      let s = Prng.sample_without_replacement g n m in
      List.length s = m
      && List.sort_uniq compare s = s
      && List.for_all (fun x -> 0 <= x && x < n) s)

let prop_prng_shuffle =
  t "prng shuffle is a permutation" 200
    (QCheck.pair QCheck.small_int gen_elts)
    (fun (seed, l) ->
      let a = Array.of_list l in
      Prng.shuffle (Prng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare l)

(* ------------------------------------------------------------------ *)
(* Stats.percentile *)

let gen_floats_with_nan =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_float l))
    QCheck.Gen.(
      map2
        (fun l nans -> List.map (fun b -> if b then nan else 1.0) nans @ l)
        (list_size (int_range 1 30) (float_bound_inclusive 1000.0))
        (list_size (int_bound 3) bool))

let prop_percentile_monotone =
  t "percentile monotone in p (NaN-safe order)" 300
    (QCheck.triple gen_floats_with_nan (QCheck.float_range 0.0 100.0)
       (QCheck.float_range 0.0 100.0))
    (fun (l, p1, p2) ->
      let xs = Array.of_list l in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Float.compare (Stats.percentile xs lo) (Stats.percentile xs hi) <= 0)

let prop_percentile_bounds =
  t "percentile 100 is the max under the NaN-safe order" 300
    gen_floats_with_nan (fun l ->
      let xs = Array.of_list l in
      let top = Stats.percentile xs 100.0 in
      Array.for_all (fun x -> Float.compare x top <= 0) xs)

let prop_percentile_member =
  t "percentile returns a sample (nearest-rank)" 300
    (QCheck.pair gen_floats_with_nan (QCheck.float_range 0.0 100.0))
    (fun (l, p) ->
      let xs = Array.of_list l in
      let v = Stats.percentile xs p in
      List.exists (fun x -> Float.compare x v = 0) l)

let prop_summary_ordered =
  t "summarize: min <= median <= max" 300
    (QCheck.make
       ~print:(fun l -> String.concat "," (List.map string_of_float l))
       QCheck.Gen.(list_size (int_range 1 30) (float_bound_inclusive 1000.0)))
    (fun l ->
      let s = Stats.summarize (Array.of_list l) in
      s.Stats.min <= s.Stats.median
      && s.Stats.median <= s.Stats.max
      && s.Stats.min <= s.Stats.mean
      && s.Stats.mean <= s.Stats.max +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Exact vs Brute on random small weighted graphs *)

(* Graphs are generated from a Prng seed so shrinking stays meaningful
   (the seed is the counterexample) and cases are reproducible. *)
let gen_graph =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_bound 1_000_000) (int_range 1 14))

let build_graph (seed, n) =
  let rng = Prng.create (Hashtbl.hash ("props", seed, n)) in
  let p = 0.1 +. Prng.float rng 0.6 in
  let g = Build.erdos_renyi rng n p in
  Build.random_weights rng g 9;
  g

let prop_exact_vs_brute =
  t "Exact.solve = Brute.solve on random graphs (n <= 14)" 150 gen_graph
    (fun case ->
      let g = build_graph case in
      let sol = Mis.Exact.solve g in
      let bw, bset = Mis.Brute.solve g in
      sol.Mis.Exact.weight = bw
      && Mis.Verify.solution_ok g ~claimed_weight:sol.Mis.Exact.weight
           sol.Mis.Exact.set
      && Mis.Verify.solution_ok g ~claimed_weight:bw bset)

let prop_exact_induced =
  t "Exact.solve_induced <= OPT and verifies" 100
    (QCheck.pair gen_graph gen_elts)
    (fun (case, l) ->
      let g = build_graph case in
      let n = Graph.n g in
      let sub = Bitset.create n in
      List.iter (fun i -> Bitset.add sub (i mod n)) l;
      let sol = Mis.Exact.solve_induced g sub in
      sol.Mis.Exact.weight <= Mis.Exact.opt g
      && Bitset.subset sol.Mis.Exact.set sub
      && Mis.Verify.solution_ok g ~claimed_weight:sol.Mis.Exact.weight
           sol.Mis.Exact.set)

let prop_greedy_below_exact =
  t "Greedy <= Exact <= clique-cover bound" 150 gen_graph (fun case ->
      let g = build_graph case in
      let _, greedy, cover = Mis.Bounds.sandwich g in
      let opt = Mis.Exact.opt g in
      greedy <= opt && opt <= cover)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "props"
    [
      qsuite "bitset-vs-reference"
        [
          prop_union;
          prop_inter;
          prop_diff;
          prop_complement;
          prop_subset;
          prop_disjoint;
          prop_inter_cardinal;
          prop_in_place;
          prop_add_remove;
          prop_fold_sorted;
        ];
      qsuite "dynvec"
        [ prop_dynvec_push_get; prop_dynvec_to_list; prop_dynvec_set_get ];
      qsuite "prng"
        [
          prop_prng_deterministic;
          prop_prng_split_deterministic;
          prop_prng_split_independent;
          prop_prng_int_bounds;
          prop_prng_sample;
          prop_prng_shuffle;
        ];
      qsuite "stats"
        [
          prop_percentile_monotone;
          prop_percentile_bounds;
          prop_percentile_member;
          prop_summary_ordered;
        ];
      qsuite "solver-oracle"
        [ prop_exact_vs_brute; prop_exact_induced; prop_greedy_below_exact ];
    ]
