(* Chaos harness: supervised pools under worker kills, seeded
   filesystem fault injection, and fsck repair — the unit-test side of
   the bench CHAOS leg (bench/exp_chaos.ml).

   Invariants exercised here:
   - a worker killed mid-batch yields [Pool.map] results byte-identical
     to [jobs = 1], and the pool heals to full width;
   - a poison task (kills every executor) is quarantined as
     [Error.Worker_death] with the identical message at every width;
   - the watchdog condemns a genuinely wedged worker and the batch
     still completes (fake clock, so no real-time dependence);
   - the fault injector replays exactly: same plan + same operation
     sequence => same faults;
   - cache/journal on a faulty filesystem never return wrong values;
   - fsck quarantines every invalid entry, a second pass is clean, and
     a rerun hits every surviving entry.

   A [Unix.alarm] is armed in [main]: if any supervision bug hangs a
   batch, the suite dies with SIGALRM instead of blocking CI. *)

module Pool = Exec.Pool
module Cache = Exec.Cache
module Journal = Exec.Journal
module Fsck = Exec.Fsck
module Fsio = Exec.Fsio

let check msg = Alcotest.(check bool) msg

let check_string msg = Alcotest.(check string) msg

let check_int msg = Alcotest.(check int) msg

let rm_rf root =
  let fs = Stdx.Fsio.real in
  let rec go path =
    if fs.Stdx.Fsio.file_exists path then
      if fs.Stdx.Fsio.is_directory path then begin
        Array.iter
          (fun f -> go (Filename.concat path f))
          (fs.Stdx.Fsio.readdir path);
        try fs.Stdx.Fsio.rmdir path with Sys_error _ -> ()
      end
      else try fs.Stdx.Fsio.remove path with Sys_error _ -> ()
  in
  go root

(* Tasks are nanosecond-cheap, so the calling domain would drain a
   whole batch before a worker even wakes from its condition wait.
   Tests that need a worker to claim a slot gate the caller-side tasks
   on [flag] (bounded, so nothing can deadlock): the caller lingers,
   the worker wakes and claims. *)
let await_flag flag =
  let deadline = Unix.gettimeofday () +. 0.2 in
  while (not (Atomic.get flag)) && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done

(* ------------------------------------------------------------------ *)
(* Pool supervision *)

let test_kill_matches_jobs_one () =
  (* Slots 0, 5, 10, ... kill their first executor; the re-enqueued
     slots must be drained by survivors with results identical to the
     sequential pool (which retries the same kills in-line). *)
  let xs = Array.init 24 Fun.id in
  let killing_task attempts i =
    let a = Atomic.fetch_and_add attempts.(i) 1 in
    if i mod 5 = 0 && a = 0 then raise Pool.Chaos_kill;
    (i * i) + 1
  in
  let run jobs =
    let attempts = Array.map (fun _ -> Atomic.make 0) xs in
    Pool.with_pool ~jobs (fun pool -> Pool.map pool (killing_task attempts) xs)
  in
  let seq = run 1 in
  check "kills retried at jobs=1" true (seq = Array.map (fun i -> (i * i) + 1) xs);
  check "jobs=4 under kills = jobs=1" true (run 4 = seq);
  check "jobs=2 under kills = jobs=1" true (run 2 = seq)

let test_respawn_heals_pool () =
  (* Each slot's first execution kills its worker iff it runs on a
     worker domain (the caller absorbs kills without dying), so no slot
     can reach the poison limit.  After at least one genuine worker
     death, the next batch must respawn to full width. *)
  Pool.with_pool ~jobs:3 (fun pool ->
      let caller = Domain.self () in
      let died = Atomic.make false in
      let xs = Array.init 32 Fun.id in
      let expected = Array.map (fun i -> i + 100) xs in
      let tries = ref 0 in
      while (not (Atomic.get died)) && !tries < 50 do
        incr tries;
        let attempts = Array.map (fun _ -> Atomic.make 0) xs in
        let task i =
          let a = Atomic.fetch_and_add attempts.(i) 1 in
          if a = 0 && Domain.self () <> caller then begin
            Atomic.set died true;
            raise Pool.Chaos_kill
          end;
          await_flag died;
          i + 100
        in
        check "batch completes despite worker deaths" true
          (Pool.map pool task xs = expected)
      done;
      check "a worker death was provoked" true (Atomic.get died);
      (* The healing batch first respawns the dead workers. *)
      check "healed batch" true (Pool.map pool (fun i -> i + 100) xs = expected);
      check_int "healed to full width" 3 (Pool.live_workers pool);
      check "restarts counted" true (Pool.restarts pool >= 1))

let test_poison_identical_at_every_width () =
  (* A deterministic crasher must terminate the batch as the same
     quarantine error — same message — at jobs = 1 and jobs = 4, and
     must not eat the pool. *)
  let task i = if i = 2 then raise Pool.Chaos_kill else i in
  let poison_of pool =
    match Pool.map pool task [| 0; 1; 2; 3 |] with
    | _ -> None
    | exception Exec.Error.Error (Exec.Error.Worker_death msg) -> Some msg
  in
  Pool.with_pool ~jobs:4 (fun pool ->
      let m4 = poison_of pool in
      let m1 = Pool.with_pool ~jobs:1 poison_of in
      check "quarantined at jobs=4" true (m4 <> None);
      check "quarantined at jobs=1" true (m1 <> None);
      check_string "identical poison message" (Option.get m1) (Option.get m4);
      (* The poisoned batch did not wedge or kill the pool. *)
      check "pool survives poison" true
        (Pool.map pool succ [| 1; 2; 3 |] = [| 2; 3; 4 |]))

let test_watchdog_condemns_wedge () =
  (* One task wedges forever (spins on a flag) when executed by a
     worker.  Under a fake clock advanced only by the supervision
     sleep, the watchdog must condemn the wedged worker, re-enqueue its
     slot, and complete the batch with correct results — no real time
     involved. *)
  let now = ref 0.0 in
  let clock () = !now in
  let sleep d = now := !now +. d in
  Pool.with_pool ~watchdog_s:0.05 ~clock ~sleep ~jobs:2 (fun pool ->
      let caller = Domain.self () in
      let release = Atomic.make false in
      let engaged = Atomic.make false in
      let xs = Array.init 8 Fun.id in
      let expected = Array.map (fun i -> i * 10) xs in
      let task i =
        if
          Domain.self () <> caller
          && Atomic.compare_and_set engaged false true
        then
          (* Wedge: no heartbeat movement until released. *)
          while not (Atomic.get release) do
            Domain.cpu_relax ()
          done;
        await_flag engaged;
        i * 10
      in
      (* The lone worker races the caller for slots; retry until it
         actually claimed one (and therefore wedged). *)
      let tries = ref 0 in
      while (not (Atomic.get engaged)) && !tries < 100 do
        incr tries;
        check "wedged batch still completes" true (Pool.map pool task xs = expected)
      done;
      check "wedge engaged" true (Atomic.get engaged);
      (* Let the condemned (leaked) domain finish so shutdown can
         join its replacement cleanly. *)
      Atomic.set release true;
      (* The next batch replaces the condemned worker.  (No width
         assertion here: under a fake clock that leaps a window per
         supervision poll, even a healthy worker can be re-condemned
         mid-batch — harmless, but it makes the post-batch width
         nondeterministic.) *)
      check "post-condemnation batch" true
        (Pool.map pool (fun i -> i * 10) xs = expected);
      check "condemned worker replaced" true (Pool.restarts pool >= 1))

(* ------------------------------------------------------------------ *)
(* Sharded flat executor under a worker kill mid-round *)

(* Wrap a flat program so node [at_node] kills its executing domain in
   round [at_round] — from inside [Runtime.run_flat_par]'s stage phase,
   which is where a real domain loss would land. *)
let kill_wrap (fp : 'out Congest.Fastpath.t) ~at_round ~at_node =
  {
    fp with
    Congest.Fastpath.fspawn =
      (fun view ->
        let node = fp.Congest.Fastpath.fspawn view in
        if view.Congest.Program.id <> at_node then node
        else
          {
            node with
            Congest.Fastpath.fstep =
              (fun ~round ~inbox em ->
                if round = at_round then raise Pool.Chaos_kill;
                node.Congest.Fastpath.fstep ~round ~inbox em);
          });
  }

let test_flat_par_kill_mid_round () =
  (* A worker killed mid-round must surface as the same structured
     [Worker_death] — same message, same trace left behind — at every
     width including jobs = 1, and the torn round must record no trace:
     what remains is exactly a clean run truncated at the last complete
     round. *)
  let rounds = 12 and at_round = 5 in
  let c = Wgraph.Csr.of_graph (Wgraph.Build.cycle 64) in
  let config =
    { Congest.Runtime.default_config with Congest.Runtime.max_rounds = rounds }
  in
  let outcome jobs =
    Pool.with_pool ~jobs (fun pool ->
        let trace = Congest.Trace.create ~mode:Congest.Trace.Light () in
        let fp =
          kill_wrap (Congest.Fastpath.max_id ~rounds) ~at_round ~at_node:3
        in
        match Congest.Runtime.run_flat_par ~config ~trace ~pool fp c with
        | _ -> Alcotest.fail "kill did not surface"
        | exception Exec.Error.Error (Exec.Error.Worker_death msg) ->
            (* [Trace.digest] mixes in the executed-round count, which a
               torn run never sets — compare the pure send-stream state
               instead. *)
            ( msg,
              Congest.Trace.total_messages trace,
              Congest.Trace.send_digest_state trace ))
  in
  let ((_, msgs, digest) as ref1) = outcome 1 in
  List.iter
    (fun jobs ->
      check (Printf.sprintf "jobs=%d outcome = jobs=1" jobs) true
        (outcome jobs = ref1))
    [ 2; 3; 8 ];
  let clean = Congest.Trace.create ~mode:Congest.Trace.Light () in
  let short =
    { Congest.Runtime.default_config with Congest.Runtime.max_rounds = at_round }
  in
  ignore
    (Congest.Runtime.run_flat ~config:short ~trace:clean
       (Congest.Fastpath.max_id ~rounds) c);
  check "torn round recorded no messages" true
    (msgs = Congest.Trace.total_messages clean);
  check "torn round recorded no digest" true
    (digest = Congest.Trace.send_digest_state clean)

(* ------------------------------------------------------------------ *)
(* Fault injector replay *)

let test_fsio_replay_deterministic () =
  (* Same plan + same operation sequence => byte-identical outcomes:
     the same ops fail with the same errors, torn/flipped bytes land
     identically, and the fault counters agree. *)
  let dir = "chaos_fsio_test" in
  let plan =
    Fsio.plan
      ~default:
        (Fsio.op_fault ~eintr:0.2 ~enospc:0.15 ~torn:0.15 ~flip:0.15
           ~fail_rename:0.2 ())
      42
  in
  let episode () =
    rm_rf dir;
    Stdx.Fsio.mkdir_p dir;
    let inj = Fsio.injector plan in
    let fs = Fsio.faulty inj in
    let log = Buffer.create 512 in
    let op name f =
      match f () with
      | s -> Buffer.add_string log (Printf.sprintf "%s: %s\n" name s)
      | exception Sys_error m ->
          Buffer.add_string log (Printf.sprintf "%s: raised %s\n" name m)
    in
    let path k = Filename.concat dir (Printf.sprintf "f%02d" k) in
    for k = 0 to 11 do
      op
        (Printf.sprintf "write %d" k)
        (fun () ->
          fs.Stdx.Fsio.write_file (path k) (String.make (20 + k) 'a');
          "ok")
    done;
    for k = 0 to 11 do
      op
        (Printf.sprintf "read %d" k)
        (fun () -> Digest.to_hex (Digest.string (fs.Stdx.Fsio.read_file (path k))))
    done;
    op "rename" (fun () ->
        fs.Stdx.Fsio.rename (path 0) (path 0 ^ ".moved");
        "ok");
    for k = 1 to 4 do
      op
        (Printf.sprintf "append %d" k)
        (fun () ->
          fs.Stdx.Fsio.append_line (path k) "tail-line\n";
          "ok")
    done;
    (Buffer.contents log, Fsio.faults_injected inj, Fsio.total_injected inj)
  in
  let log1, faults1, total1 = episode () in
  let log2, faults2, total2 = episode () in
  check_string "identical op transcript" log1 log2;
  check "identical fault breakdown" true (faults1 = faults2);
  check_int "identical fault total" total1 total2;
  check "faults actually fired" true (total1 > 0);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Cache + journal under faults, repaired by fsck *)

let chaos_root = "chaos_state_test"

let chaos_cache_dir = Filename.concat chaos_root "cache"

let chaos_journal_dir = Filename.concat chaos_root "journal"

let key_for i =
  Cache.key ~family:"chaos-test"
    ~params:(Printf.sprintf "cell=%d" i)
    ~seed:i ~solver:"s" ()

let value_for i = Printf.sprintf "value-%d-%s" i (String.make 24 'v')

let entry_files dir =
  (* Every *.entry under the two-level tree, quarantine excluded. *)
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.concat_map (fun shard ->
           let d = Filename.concat dir shard in
           if shard <> "quarantine" && Sys.is_directory d then
             Sys.readdir d |> Array.to_list |> List.sort compare
             |> List.filter_map (fun f ->
                    if Filename.check_suffix f ".entry" then
                      Some (Filename.concat d f)
                    else None)
           else [])

let test_state_survives_faults_and_fsck () =
  rm_rf chaos_root;
  let n = 12 in
  let plan =
    Fsio.plan
      ~default:
        (Fsio.op_fault ~eintr:0.08 ~enospc:0.06 ~torn:0.06 ~flip:0.05
           ~fail_rename:0.08 ())
      2020
  in
  let inj = Fsio.injector plan in
  let fs = Fsio.chaos inj in
  (* Hot-path contract under injected faults: memo never returns a
     wrong value, whatever the filesystem does underneath. *)
  let cache = Cache.create ~fs ~dir:chaos_cache_dir () in
  for i = 0 to n - 1 do
    for _ = 1 to 3 do
      check_string "memo value survives faults" (value_for i)
        (Cache.memo cache (key_for i) (fun () -> value_for i))
    done
  done;
  (* Journal on the same faulty filesystem; append failures surviving
     the retries are tolerated (completion tracking is an accelerator,
     not a correctness dependency). *)
  (match
     Journal.open_ ~fs ~dir:chaos_journal_dir ~run_id:"chaos-test" ()
   with
  | j ->
      for i = 0 to n - 1 do
        try Journal.record j (key_for i) with Exec.Error.Error _ -> ()
      done;
      Journal.close j
  | exception Exec.Error.Error _ -> ());
  (* fsck pass 1: every invalid entry — and only those — quarantined. *)
  let invalid_before =
    List.length
      (List.filter
         (fun p -> Result.is_error (Cache.validate_file p))
         (entry_files chaos_cache_dir))
  in
  let report1 = Fsck.run ~cache_dir:chaos_cache_dir ~journal_dir:chaos_journal_dir () in
  check_int "every invalid entry quarantined" invalid_before
    report1.Fsck.cache_quarantined;
  check "surviving entries all valid" true
    (List.for_all
       (fun p -> Result.is_ok (Cache.validate_file p))
       (entry_files chaos_cache_dir));
  (* Pass 2: idempotent, nothing left to repair. *)
  let report2 = Fsck.run ~cache_dir:chaos_cache_dir ~journal_dir:chaos_journal_dir () in
  check "second fsck pass clean" true (Fsck.clean report2);
  (* Rerun on a clean filesystem: every surviving entry is a hit for
     its key, and missing ones heal by recomputation. *)
  let clean_cache = Cache.create ~dir:chaos_cache_dir () in
  let hits = ref 0 in
  for i = 0 to n - 1 do
    let digest = Cache.digest_hex (key_for i) in
    let p =
      Filename.concat
        (Filename.concat chaos_cache_dir (String.sub digest 0 2))
        (digest ^ ".entry")
    in
    if Sys.file_exists p then begin
      incr hits;
      match Cache.find clean_cache (key_for i) with
      | Some v -> check_string "surviving entry hits" (value_for i) v
      | None -> Alcotest.fail ("surviving entry missed: " ^ p)
    end
    else
      check_string "quarantined entry heals" (value_for i)
        (Cache.memo clean_cache (key_for i) (fun () -> value_for i))
  done;
  check "some entries survived the chaos" true (!hits > 0);
  (* The repaired journal resumes cleanly and only ever marks our own
     keys complete. *)
  (match
     Journal.open_ ~dir:chaos_journal_dir ~run_id:"chaos-test" ()
   with
  | j ->
      let completed = ref 0 in
      for i = 0 to n - 1 do
        if Journal.completed j (key_for i) then incr completed
      done;
      check_int "resumed = completed among our keys" (Journal.resumed_count j)
        !completed;
      Journal.close j
  | exception Exec.Error.Error _ -> Alcotest.fail "repaired journal must open");
  rm_rf chaos_root

(* ------------------------------------------------------------------ *)
(* End-to-end: combined chaos *)

let e2e_root = "chaos_e2e_test"

let test_end_to_end_chaos () =
  (* Worker kills and filesystem faults at once, pinned seeds: the
     sweep must terminate (alarm guard in [main]) with rows
     byte-identical to the clean sequential reference, and an
     fsck-repaired rerun must reproduce them again. *)
  rm_rf e2e_root;
  let cache_dir = Filename.concat e2e_root "cache" in
  let n = 16 in
  let cell i = Printf.sprintf "cell %d: %d" i ((i * 7919) mod 1009) in
  let reference = Array.init n cell in
  let plan =
    Fsio.plan
      ~default:
        (Fsio.op_fault ~eintr:0.05 ~enospc:0.04 ~torn:0.04 ~flip:0.03
           ~fail_rename:0.04 ())
      77
  in
  let inj = Fsio.injector plan in
  let cache = Cache.create ~fs:(Fsio.chaos inj) ~dir:cache_dir () in
  let rows =
    Pool.with_pool ~jobs:3 (fun pool ->
        let attempts = Array.init n (fun _ -> Atomic.make 0) in
        Pool.map pool
          (fun i ->
            let a = Atomic.fetch_and_add attempts.(i) 1 in
            if i mod 4 = 0 && a = 0 then raise Pool.Chaos_kill;
            Cache.memo cache (key_for i) (fun () -> cell i))
          (Array.init n Fun.id))
  in
  check "chaos rows = clean reference" true (rows = reference);
  ignore (Fsck.run ~cache_dir ~journal_dir:(Filename.concat e2e_root "none") ());
  let repaired = Cache.create ~dir:cache_dir () in
  let rows' =
    Array.init n (fun i -> Cache.memo repaired (key_for i) (fun () -> cell i))
  in
  check "repaired rerun rows identical" true (rows' = reference);
  rm_rf e2e_root

(* ------------------------------------------------------------------ *)

let () =
  (* A supervision bug must fail CI, not block it. *)
  ignore (Unix.alarm 600);
  Alcotest.run "chaos"
    [
      ( "pool",
        [
          Alcotest.test_case "kill mid-batch = jobs=1" `Quick
            test_kill_matches_jobs_one;
          Alcotest.test_case "respawn heals pool" `Quick
            test_respawn_heals_pool;
          Alcotest.test_case "poison identical at every width" `Quick
            test_poison_identical_at_every_width;
          Alcotest.test_case "watchdog condemns wedge" `Quick
            test_watchdog_condemns_wedge;
          Alcotest.test_case "flat-par kill mid-round" `Quick
            test_flat_par_kill_mid_round;
        ] );
      ( "fsio",
        [
          Alcotest.test_case "replay determinism" `Quick
            test_fsio_replay_deterministic;
        ] );
      ( "state",
        [
          Alcotest.test_case "cache+journal under faults, fsck repair" `Quick
            test_state_survives_faults_and_fsck;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "combined chaos terminates identically" `Quick
            test_end_to_end_chaos;
        ] );
    ]
