(* Tests for the serving layer: wire protocol round-trips, the daemon's
   reply/containment contracts (malformed input, oversized lines, budget
   rejection, arrival-order replies), byte-parity of socket solve
   replies with the offline CLI, and graceful drain on SIGTERM against
   the real executable. *)

module J = Stdx.Jsonx
module Proto = Serve.Proto
module Client = Serve.Client
module Daemon = Serve.Daemon

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let exe = Filename.concat ".." (Filename.concat "bin" "maxis_lb.exe")

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "maxis-serve-test-%d-%d.sock" (Unix.getpid ()) !n)

(* ------------------------------------------------------------------ *)
(* Protocol round-trips *)

let all_requests =
  [
    Proto.ping ~id:(J.Int 1) ();
    Proto.stats ~id:(J.Str "s") ();
    Proto.solve ~id:(J.Int 2)
      {
        Proto.alpha = 1;
        ell = 3;
        players = 2;
        seed = 7;
        intersecting = true;
        quadratic = true;
        budget_nodes = Some 1234;
      };
    Proto.solve ~id:J.Null Proto.solve_defaults;
    Proto.bounds ~id:(J.Int 3) ~alpha:2 ~ell:5 ~players:4 ();
    Proto.claim_verify ~id:(J.Int 4)
      { Proto.verify_defaults with Proto.v_samples = 2; v_budget_nodes = Some 9 };
    Proto.chaos_kill ~id:(J.Int 5) ();
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let line = Proto.encode_request req in
      match Proto.decode_request line with
      | Error e -> Alcotest.failf "decode %s: %s" line e
      | Ok got ->
          check (Proto.op_name req.Proto.op) true (got = req);
          (* and the encoding is a fixed point *)
          check_string "re-encode" line (Proto.encode_request got))
    all_requests

let test_reply_roundtrip () =
  List.iter
    (fun r ->
      match Proto.decode_reply (Proto.encode_reply r) with
      | Error e -> Alcotest.failf "decode reply: %s" e
      | Ok got -> check "reply" true (got = r))
    [
      Proto.Ok_reply { id = J.Int 1; op = "solve"; payload = "OPT 12\nline2" };
      Proto.Rejected { id = J.Null; op = "solve"; reason = "window full" };
      Proto.Error_reply { id = J.Str "x"; op = "?"; reason = "bad \"json\"" };
    ]

let test_decode_rejects () =
  let bad l =
    match Proto.decode_request l with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "decoded: %s" l
  in
  bad "";
  bad "nonsense";
  bad "[1,2]";
  bad {|{"id":1}|};
  bad {|{"op":"no-such-op"}|};
  bad {|{"op":"solve","ell":"four"}|};
  bad {|{"op":"solve","budget_nodes":0}|}

let test_addr_of_string () =
  check "unix" true
    (Proto.addr_of_string "unix:/tmp/x.sock" = Ok (Proto.Unix_sock "/tmp/x.sock"));
  check "bare path" true
    (Proto.addr_of_string "relative/path.sock"
    = Ok (Proto.Unix_sock "relative/path.sock"));
  check "tcp" true
    (Proto.addr_of_string "tcp:127.0.0.1:7070"
    = Ok (Proto.Tcp ("127.0.0.1", 7070)));
  check "bad port" true (Result.is_error (Proto.addr_of_string "tcp:host:0"));
  check "no port" true (Result.is_error (Proto.addr_of_string "tcp:host"));
  check "empty" true (Result.is_error (Proto.addr_of_string ""))

(* ------------------------------------------------------------------ *)
(* In-process daemon harness *)

let with_daemon ?(configure = Fun.id) f =
  let sock = fresh_sock () in
  let cfg =
    configure
      {
        (Daemon.default_config ~listen:(Proto.Unix_sock sock) ()) with
        Daemon.allow_chaos = true;
      }
  in
  let d = Daemon.create cfg in
  let h = Domain.spawn (fun () -> Daemon.run d) in
  Fun.protect
    ~finally:(fun () ->
      Daemon.stop d;
      Domain.join h)
    (fun () -> f (Proto.Unix_sock sock) d)

let solve_sp =
  {
    Proto.solve_defaults with
    Proto.ell = 3;
    players = 2;
    seed = 11;
    budget_nodes = Some 200_000;
  }

let test_daemon_basic_ops () =
  with_daemon (fun addr _d ->
      let c = Client.connect addr in
      (let r = Client.request c (Proto.ping ~id:(J.Int 9) ()) in
       check_string "ping payload" "pong"
         (Option.value (Proto.reply_payload r) ~default:"");
       check "ping echoes id" true (Proto.reply_id r = J.Int 9));
      (let r = Client.request c (Proto.solve solve_sp) in
       check_string "solve status" "ok" (Proto.reply_status r);
       check_string "solve payload" "OPT 12"
         (Option.value (Proto.reply_payload r) ~default:""));
      (let r = Client.request c (Proto.stats ()) in
       check_string "stats status" "ok" (Proto.reply_status r));
      Client.close c)

let test_malformed_line_survives () =
  with_daemon (fun addr _d ->
      let c = Client.connect addr in
      Client.send_raw c "{\"op\":";
      let r = Client.recv c in
      check_string "malformed -> error" "error" (Proto.reply_status r);
      (* the connection lives on *)
      let r = Client.request c (Proto.ping ()) in
      check_string "still serving" "ok" (Proto.reply_status r);
      Client.close c)

let test_malformed_number_survives () =
  (* A bad number lexeme used to escape Jsonx.parse as
     Failure "float_of_string" and crash the event loop; it must be a
     structured error reply on a surviving connection. *)
  with_daemon (fun addr _d ->
      let c = Client.connect addr in
      List.iter
        (fun raw ->
          Client.send_raw c raw;
          let r = Client.recv c in
          check_string (Printf.sprintf "%s -> error" raw) "error"
            (Proto.reply_status r))
        [
          {|{"op":"ping","x":1e}|};
          {|{"op":"ping","x":1E+}|};
          {|{"op":"ping","x":-.}|};
          {|{"op":"solve","seed":2e-}|};
        ];
      let r = Client.request c (Proto.ping ()) in
      check_string "still serving" "ok" (Proto.reply_status r);
      Client.close c)

let test_oversized_line_survives () =
  with_daemon
    ~configure:(fun cfg -> { cfg with Daemon.max_line_bytes = 256 })
    (fun addr _d ->
      let c = Client.connect addr in
      Client.send_raw c (String.make 1000 'y');
      let r = Client.recv c in
      check_string "oversized -> error" "error" (Proto.reply_status r);
      let r = Client.request c (Proto.ping ()) in
      check_string "still serving" "ok" (Proto.reply_status r);
      Client.close c)

let test_budget_rejection () =
  with_daemon
    ~configure:(fun cfg -> { cfg with Daemon.max_budget_nodes = 1000 })
    (fun addr _d ->
      let c = Client.connect addr in
      let r =
        Client.request c
          (Proto.solve { solve_sp with Proto.budget_nodes = Some 5000 })
      in
      check_string "over ceiling -> rejected" "rejected" (Proto.reply_status r);
      (* at the ceiling: admitted *)
      let r =
        Client.request c
          (Proto.solve { solve_sp with Proto.budget_nodes = Some 1000 })
      in
      check_string "at ceiling -> served" "ok" (Proto.reply_status r);
      Client.close c)

let test_overload_rejection_and_order () =
  (* A window of 1 with two solves pipelined in one write: the first is
     admitted, the second must be refused (never queued into a hang),
     and replies must come back in arrival order. *)
  with_daemon
    ~configure:(fun cfg -> { cfg with Daemon.max_inflight = 1 })
    (fun addr _d ->
      let c = Client.connect addr in
      let req id = Proto.encode_request (Proto.solve ~id:(J.Int id) solve_sp) in
      Client.send_raw c (req 1 ^ "\n" ^ req 2);
      let r1 = Client.recv c in
      let r2 = Client.recv c in
      check "arrival order" true (Proto.reply_id r1 = J.Int 1);
      check "arrival order 2" true (Proto.reply_id r2 = J.Int 2);
      check_string "first admitted" "ok" (Proto.reply_status r1);
      check_string "second rejected" "rejected" (Proto.reply_status r2);
      (* the slot freed up: a later request is served again *)
      let r = Client.request c (Proto.solve solve_sp) in
      check_string "window recovered" "ok" (Proto.reply_status r);
      Client.close c)

let test_chaos_kill_contained () =
  with_daemon
    ~configure:(fun cfg -> { cfg with Daemon.jobs = 2 })
    (fun addr _d ->
      let c = Client.connect addr in
      let lines =
        [
          Proto.encode_request (Proto.solve ~id:(J.Int 1) solve_sp);
          Proto.encode_request (Proto.chaos_kill ~id:(J.Int 2) ());
          Proto.encode_request (Proto.solve ~id:(J.Int 3) solve_sp);
        ]
      in
      Client.send_raw c (String.concat "\n" lines);
      let r1 = Client.recv c in
      let r2 = Client.recv c in
      let r3 = Client.recv c in
      check_string "solve before kill" "ok" (Proto.reply_status r1);
      check_string "kill -> error reply" "error" (Proto.reply_status r2);
      check_string "solve after kill" "ok" (Proto.reply_status r3);
      check_string "payload unharmed" "OPT 12"
        (Option.value (Proto.reply_payload r3) ~default:"");
      Client.close c)

let test_chaos_refused_by_default () =
  let sock = fresh_sock () in
  let d = Daemon.create (Daemon.default_config ~listen:(Proto.Unix_sock sock) ()) in
  let h = Domain.spawn (fun () -> Daemon.run d) in
  Fun.protect
    ~finally:(fun () ->
      Daemon.stop d;
      Domain.join h)
    (fun () ->
      let c = Client.connect (Proto.Unix_sock sock) in
      let r = Client.request c (Proto.chaos_kill ()) in
      check_string "chaos disabled" "error" (Proto.reply_status r);
      Client.close c)

let test_requests_served_counter () =
  with_daemon (fun addr d ->
      let before = Daemon.requests_served d in
      let c = Client.connect addr in
      ignore (Client.request c (Proto.ping ()));
      ignore (Client.request c (Proto.ping ()));
      Client.close c;
      check "served counter grows" true (Daemon.requests_served d >= before + 2))

(* ------------------------------------------------------------------ *)
(* Byte parity with the offline CLI *)

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_solve_parity_with_cli () =
  (* The same instance and budget through the socket and through
     `maxis_lb solve` must produce the same payload bytes — cold cache,
     warm cache, and across pool widths. *)
  let out = Filename.temp_file "serve_parity" ".out" in
  let code =
    Sys.command
      (Printf.sprintf
         "%s solve --ell 3 --players 2 --seed 11 --budget-nodes 200000 \
          --no-cache >%s 2>/dev/null"
         (Filename.quote exe) (Filename.quote out))
  in
  check_int "cli exit" 0 code;
  let cli_line = String.trim (slurp out) in
  Sys.remove out;
  List.iter
    (fun jobs ->
      with_daemon
        ~configure:(fun cfg -> { cfg with Daemon.jobs })
        (fun addr _d ->
          let c = Client.connect addr in
          let cold = Client.request c (Proto.solve solve_sp) in
          let warm = Client.request c (Proto.solve solve_sp) in
          check_string
            (Printf.sprintf "socket = cli (cold, jobs=%d)" jobs)
            cli_line
            (Option.value (Proto.reply_payload cold) ~default:"");
          check_string
            (Printf.sprintf "socket = cli (warm, jobs=%d)" jobs)
            cli_line
            (Option.value (Proto.reply_payload warm) ~default:"");
          Client.close c))
    [ 1; 3 ]

let test_cli_solve_exhausted_exit () =
  let code =
    Sys.command
      (Printf.sprintf
         "%s solve --ell 3 --players 2 --seed 11 --budget-nodes 10 --no-cache \
          >/dev/null 2>&1"
         (Filename.quote exe))
  in
  check_int "exhausted solve exits 3" 3 code

(* ------------------------------------------------------------------ *)
(* Drain on SIGTERM against the real executable *)

let wait_no_hang pid =
  (* bounded wait so a drain bug fails the test instead of wedging it *)
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          Unix.kill pid Sys.sigkill;
          Alcotest.fail "daemon did not exit within 30s of SIGTERM"
        end;
        Unix.sleepf 0.05;
        go ()
    | _, status -> status
  in
  go ()

let test_sigterm_drains_exe () =
  let sock = fresh_sock () in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--listen"; "unix:" ^ sock; "--no-cache" |]
      Unix.stdin devnull devnull
  in
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    (fun () ->
      let c = Client.connect (Proto.Unix_sock sock) in
      let r = Client.request c (Proto.solve solve_sp) in
      check_string "served before drain" "ok" (Proto.reply_status r);
      Unix.kill pid Sys.sigterm;
      (match wait_no_hang pid with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n -> Alcotest.failf "drain exited %d, want 0" n
      | Unix.WSIGNALED n -> Alcotest.failf "daemon died on signal %d" n
      | Unix.WSTOPPED _ -> Alcotest.fail "daemon stopped");
      check "socket file unlinked" true (not (Sys.file_exists sock));
      Client.close c)

let () =
  Alcotest.run "serve"
    [
      ( "proto",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "reply round-trip" `Quick test_reply_roundtrip;
          Alcotest.test_case "malformed requests rejected" `Quick
            test_decode_rejects;
          Alcotest.test_case "addr parsing" `Quick test_addr_of_string;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "basic ops" `Quick test_daemon_basic_ops;
          Alcotest.test_case "malformed line survives" `Quick
            test_malformed_line_survives;
          Alcotest.test_case "malformed number survives" `Quick
            test_malformed_number_survives;
          Alcotest.test_case "oversized line survives" `Quick
            test_oversized_line_survives;
          Alcotest.test_case "budget rejection" `Quick test_budget_rejection;
          Alcotest.test_case "overload rejected in order" `Quick
            test_overload_rejection_and_order;
          Alcotest.test_case "chaos kill contained" `Quick
            test_chaos_kill_contained;
          Alcotest.test_case "chaos refused by default" `Quick
            test_chaos_refused_by_default;
          Alcotest.test_case "served counter" `Quick test_requests_served_counter;
        ] );
      ( "parity",
        [
          Alcotest.test_case "socket solve = cli solve" `Quick
            test_solve_parity_with_cli;
          Alcotest.test_case "cli solve exit codes" `Quick
            test_cli_solve_exhausted_exit;
        ] );
      ( "drain",
        [
          Alcotest.test_case "SIGTERM drains the real exe" `Quick
            test_sigterm_drains_exe;
        ] );
    ]
