(* Tests for the quadratic family (Section 5): the fixed graph F, input
   edges, cut structure, and the Claim 6/7 gap. *)

module P = Maxis_core.Params
module BG = Maxis_core.Base_graph
module QF = Maxis_core.Quadratic_family
module Family = Maxis_core.Family
module Inputs = Commcx.Inputs
module Graph = Wgraph.Graph
module Bitset = Stdx.Bitset
module Prng = Stdx.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig2 = P.figure_params ~players:2
let p2 = P.make ~alpha:1 ~ell:3 ~players:2

let rand_inputs seed p ~intersecting =
  let rng = Prng.create seed in
  Inputs.gen_promise rng ~k:(QF.string_length p) ~t:p.P.players ~intersecting

(* ------------------------------------------------------------------ *)
(* Layout and fixed structure *)

let test_layout () =
  check_int "n = 2t copies" (2 * 2 * 12) (QF.n_nodes fig2);
  check_int "string length k^2" 9 (QF.string_length fig2);
  check_int "pair index" 5 (QF.pair_index fig2 ~m1:1 ~m2:2);
  Alcotest.check_raises "pair bounds" (Invalid_argument "Quadratic_family.pair_index")
    (fun () -> ignore (QF.pair_index fig2 ~m1:3 ~m2:0));
  Alcotest.check_raises "side bounds"
    (Invalid_argument "Quadratic_family.copy_offset: side") (fun () ->
      ignore (QF.copy_offset fig2 ~player:0 ~side:2))

let test_fixed_census_figure () =
  (* Figure 5 (t=2): 4 copies of H (30 edges each) + inter-player code
     connections on each side (18 each).  No input edges yet. *)
  let g, part = QF.fixed fig2 in
  check_int "n" 48 (Graph.n g);
  check_int "m" ((4 * 30) + (2 * 18)) (Graph.edge_count g);
  check_int "cut" 36 (Wgraph.Cut.size g part);
  check_int "expected cut" 36 (QF.expected_cut_size fig2);
  Alcotest.(check (array int)) "parts by player" [| 24; 24 |] (Wgraph.Cut.part_sizes part)

let test_fixed_weights_all_a_heavy () =
  (* Unlike the linear family, every A node weighs ell in F itself. *)
  let p = p2 in
  let g, _ = QF.fixed p in
  for i = 0 to 1 do
    for side = 0 to 1 do
      Array.iter
        (fun v -> check_int "A weight" (P.ell p) (Graph.weight g v))
        (BG.a_nodes p ~offset:(QF.copy_offset p ~player:i ~side))
    done
  done;
  check_int "code weight" 1
    (Graph.weight g (BG.sigma_node p ~offset:(QF.copy_offset p ~player:0 ~side:0) ~h:0 ~r:0))

let test_no_edges_across_sides_fixed () =
  (* In F (before inputs), G^1 and G^2 are disconnected from each other. *)
  let p = p2 in
  let g, _ = QF.fixed p in
  let u = BG.a_node p ~offset:(QF.copy_offset p ~player:0 ~side:0) ~m:0 in
  let v = BG.a_node p ~offset:(QF.copy_offset p ~player:0 ~side:1) ~m:0 in
  check "no A(i,1)-A(i,2) edge in F" false (Graph.has_edge g u v);
  let su = BG.sigma_node p ~offset:(QF.copy_offset p ~player:0 ~side:0) ~h:0 ~r:0 in
  let sv = BG.sigma_node p ~offset:(QF.copy_offset p ~player:1 ~side:1) ~h:0 ~r:1 in
  check "no cross-side code edge" false (Graph.has_edge g su sv)

let test_intercopy_within_side () =
  (* Within side b, players' code cliques are joined as in the linear
     construction. *)
  let p = p2 in
  let g, _ = QF.fixed p in
  for side = 0 to 1 do
    let u = BG.sigma_node p ~offset:(QF.copy_offset p ~player:0 ~side) ~h:1 ~r:0 in
    let v = BG.sigma_node p ~offset:(QF.copy_offset p ~player:1 ~side) ~h:1 ~r:1 in
    let twin = BG.sigma_node p ~offset:(QF.copy_offset p ~player:1 ~side) ~h:1 ~r:0 in
    check "non-matching connected" true (Graph.has_edge g u v);
    check "matching pair skipped" false (Graph.has_edge g u twin)
  done

(* ------------------------------------------------------------------ *)
(* Input edges (Figure 6) *)

let test_input_edges_semantics () =
  (* Figure 6's example: x^1 has bit (1,1) = 0 (paper's 1-based first bit)
     and everything else 1; x^2 all ones.  We encode 0-based: bit (0,0) of
     player 0 is 0, all others 1. *)
  let p = fig2 in
  let sl = QF.string_length p in
  let all_ones = List.init sl Fun.id in
  let x1_ones = List.filter (fun j -> j <> QF.pair_index p ~m1:0 ~m2:0) all_ones in
  let x = Inputs.of_bit_lists ~k:sl [ x1_ones; all_ones ] in
  let inst = QF.instance p x in
  let g = inst.Family.graph in
  let a1 m = BG.a_node p ~offset:(QF.copy_offset p ~player:0 ~side:0) ~m in
  let a2 m = BG.a_node p ~offset:(QF.copy_offset p ~player:0 ~side:1) ~m in
  (* Player 0: exactly one input edge, v^(1,1)_1 -- v^(1,2)_1. *)
  check "edge for 0-bit" true (Graph.has_edge g (a1 0) (a2 0));
  check "no edge for 1-bit" false (Graph.has_edge g (a1 0) (a2 1));
  check "no edge for 1-bit'" false (Graph.has_edge g (a1 2) (a2 2));
  (* Player 1: all ones -> no input edges at all. *)
  let b1 m = BG.a_node p ~offset:(QF.copy_offset p ~player:1 ~side:0) ~m in
  let b2 m = BG.a_node p ~offset:(QF.copy_offset p ~player:1 ~side:1) ~m in
  for m1 = 0 to 2 do
    for m2 = 0 to 2 do
      check "player 2 edgeless" false (Graph.has_edge g (b1 m1) (b2 m2))
    done
  done

let test_input_edges_count () =
  (* Number of input edges = number of 0-bits. *)
  let p = p2 in
  let x = rand_inputs 3 p ~intersecting:true in
  let inst = QF.instance p x in
  let fixed_g, _ = QF.fixed p in
  let zeros = ref 0 in
  for i = 0 to 1 do
    for j = 0 to QF.string_length p - 1 do
      if not (Inputs.bit x ~player:i j) then incr zeros
    done
  done;
  check_int "edges added"
    (Graph.edge_count fixed_g + !zeros)
    (Graph.edge_count inst.Family.graph)

let test_input_edges_are_internal () =
  (* Input edges never cross the player partition: the cut of an instance
     equals the fixed cut. *)
  let p = p2 in
  let x = rand_inputs 7 p ~intersecting:false in
  let inst = QF.instance p x in
  check_int "cut unchanged" (QF.expected_cut_size p) (Family.cut_size inst)

let test_instance_validation () =
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Quadratic_family.instance: wrong string length")
    (fun () -> ignore (QF.instance p2 (Inputs.of_bit_lists ~k:3 [ []; [] ])))

(* ------------------------------------------------------------------ *)
(* Condition 1 (differential locality) *)

let test_condition1_locality () =
  let p = p2 in
  (* Build a spec by hand (predicate may be formally invalid at these
     params, but condition 1 doesn't involve the predicate). *)
  let sl = QF.string_length p in
  let spec =
    {
      Family.name = "quadratic-test";
      string_length = sl;
      players = 2;
      build = QF.instance p;
      predicate = Maxis_core.Predicate.make ~name:"dummy" ~high:1000 ~low:0;
      func = Commcx.Functions.promise_pairwise_disjointness;
    }
  in
  let x1 = Inputs.of_bit_lists ~k:sl [ [ 0; 1 ]; [ 2 ] ] in
  let x2 = Inputs.of_bit_lists ~k:sl [ [ 0; 1 ]; [ 2; 5; 7 ] ] in
  let r = Family.check_condition1 spec x1 x2 ~player:1 in
  check "edges change only inside V^2" true r.Family.ok

(* ------------------------------------------------------------------ *)
(* The gap (Claims 6 and 7, empirically) *)

let test_claim6_witness_set () =
  (* On an intersecting instance with common pair (m1, m2), the union of
     both sides' Property-1 sets is independent and weighs 4t*ell + 2*alpha*t. *)
  let p = p2 in
  let m1 = 0 and m2 = 2 in
  let sl = QF.string_length p in
  let common = QF.pair_index p ~m1 ~m2 in
  let x = Inputs.of_bit_lists ~k:sl [ [ common ]; [ common ] ] in
  let inst = QF.instance p x in
  let g = inst.Family.graph in
  let s = Bitset.create (Graph.n g) in
  for i = 0 to 1 do
    let off1 = QF.copy_offset p ~player:i ~side:0 in
    let off2 = QF.copy_offset p ~player:i ~side:1 in
    Bitset.add s (BG.a_node p ~offset:off1 ~m:m1);
    Bitset.add s (BG.a_node p ~offset:off2 ~m:m2);
    Array.iter (fun v -> Bitset.add s v) (BG.code_nodes p ~offset:off1 ~m:m1);
    Array.iter (fun v -> Bitset.add s v) (BG.code_nodes p ~offset:off2 ~m:m2)
  done;
  check "independent" true (Wgraph.Check.is_independent g s);
  check_int "weight" (QF.high_weight p) (Graph.set_weight_of g s)

let prop_claim6_claim7_random =
  QCheck.Test.make ~name:"quadratic claims on random promise inputs" ~count:12
    QCheck.(pair small_int bool) (fun (seed, inter) ->
      let p = p2 in
      let x = rand_inputs seed p ~intersecting:inter in
      let inst = QF.instance p x in
      let opt = Mis.Exact.opt inst.Family.graph in
      if inter then opt >= QF.high_weight p else opt <= QF.low_weight p)

let test_empirical_gap_direction () =
  (* Measured OPT on disjoint instances sits strictly below intersecting
     instances even at parameters where the *formal* claim bounds don't
     separate — the empirical gap the benches sweep. *)
  let p = p2 in
  let rng = Prng.create 99 in
  let opt_of inter =
    let x =
      Inputs.gen_promise rng ~k:(QF.string_length p) ~t:2 ~intersecting:inter
    in
    Mis.Exact.opt (QF.instance p x).Family.graph
  in
  let hi = opt_of true and lo = opt_of false in
  check (Printf.sprintf "gap %d > %d" hi lo) true (hi > lo)

let test_formal_gap_validity_boundary () =
  check "small params invalid" false (QF.formal_gap_valid p2);
  (* t=4, ell = 200, alpha=1: low = 15*200 + 192 = 3192 < high = 3208. *)
  let big = P.make ~alpha:1 ~ell:200 ~players:4 in
  check "huge ell valid" true (QF.formal_gap_valid big);
  Alcotest.check_raises "predicate refuses invalid"
    (Invalid_argument
       "Quadratic_family.predicate: claim bounds do not separate at these \
        parameters (need ell >> alpha*t^3)")
    (fun () -> ignore (QF.predicate p2))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "quadratic-family"
    [
      ( "layout",
        [
          Alcotest.test_case "layout" `Quick test_layout;
          Alcotest.test_case "census (Fig 5)" `Quick test_fixed_census_figure;
          Alcotest.test_case "A nodes heavy" `Quick test_fixed_weights_all_a_heavy;
          Alcotest.test_case "sides disconnected in F" `Quick
            test_no_edges_across_sides_fixed;
          Alcotest.test_case "inter-copy within side" `Quick test_intercopy_within_side;
        ] );
      ( "input-edges",
        [
          Alcotest.test_case "semantics (Fig 6)" `Quick test_input_edges_semantics;
          Alcotest.test_case "count = zero bits" `Quick test_input_edges_count;
          Alcotest.test_case "internal to players" `Quick test_input_edges_are_internal;
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "condition 1" `Quick test_condition1_locality;
        ] );
      ( "gap",
        [
          Alcotest.test_case "claim 6 witness" `Quick test_claim6_witness_set;
          Alcotest.test_case "empirical gap" `Quick test_empirical_gap_direction;
          Alcotest.test_case "formal validity boundary" `Quick
            test_formal_gap_validity_boundary;
        ] );
      qsuite "gap-props" [ prop_claim6_claim7_random ];
    ]
