(* Randomized end-to-end soak: a compact fuzzing pass over the whole
   pipeline.  Each iteration draws parameters and promise inputs at random
   and cross-checks every layer against every other:

     - Claims 3/5 (linear) on the exact solver,
     - Definition 4's condition 2 when the formal gap is valid,
     - Property 3 on the exact optimum for random index pairs,
     - Claim 4 on a random distinct tuple,
     - the Player_sim / Runtime equivalence on Luby,
     - greedy's (Δ+1) guarantee and the bound sandwich.

   Iterations default to a CI-friendly count; set MAXIS_SOAK=<n> for long
   runs (e.g. MAXIS_SOAK=200 dune exec test/test_soak.exe).

   All randomness derives from a single root seed (MAXIS_SOAK_SEED,
   default 0x50ac) that is logged in the test-case name and in every
   failure label, so any reported failure reproduces from its own output:
   MAXIS_SOAK_SEED=<seed> re-runs the identical sequence. *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module Family = Maxis_core.Family
module Graph = Wgraph.Graph
module Bitset = Stdx.Bitset
module Prng = Stdx.Prng

let iterations =
  match Sys.getenv_opt "MAXIS_SOAK" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 6)
  | None -> 6

let root_seed =
  match Sys.getenv_opt "MAXIS_SOAK_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0x50ac)
  | None -> 0x50ac

let check = Alcotest.(check bool)

let random_params rng =
  (* Keep instances solvable: alpha in {1,2}, small ell, t in {2,3}. *)
  let alpha = 1 + Prng.int rng 2 in
  let ell = if alpha = 1 then 3 + Prng.int rng 4 else 2 + Prng.int rng 2 in
  let players = 2 + Prng.int rng 2 in
  P.make ~alpha ~ell ~players

let soak_once rng iteration =
  let p = random_params rng in
  let t = p.P.players in
  let label fmt = Printf.ksprintf (fun s -> Printf.sprintf "seed %#x iter %d (%s): %s" root_seed iteration (Format.asprintf "%a" P.pp p) s) fmt in
  let intersecting = Prng.bool rng in
  let x = Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t ~intersecting in
  let inst = LF.instance p x in
  let g = inst.Family.graph in
  let sol = Mis.Exact.solve g in
  let opt = sol.Mis.Exact.weight in
  (* solver self-consistency *)
  check (label "solution verifies") true
    (Mis.Verify.solution_ok g ~claimed_weight:opt sol.Mis.Exact.set);
  (* claims *)
  let claim =
    if intersecting then Maxis_core.Claims.claim3 p x
    else Maxis_core.Claims.claim5 p x
  in
  check (label "claim holds") true claim.Maxis_core.Claims.holds;
  (* condition 2 when the formal gap separates *)
  if LF.formal_gap_valid p then begin
    let r = Family.check_condition2 (LF.spec p) x in
    check (label "condition 2") true r.Family.ok
  end;
  (* Property 3 on the exact optimum, random pair *)
  if P.k p >= 2 && t >= 2 then begin
    let i = Prng.int rng t in
    let j = (i + 1 + Prng.int rng (t - 1)) mod t in
    let m1 = Prng.int rng (P.k p) in
    let m2 = (m1 + 1 + Prng.int rng (P.k p - 1)) mod (P.k p) in
    let r = Maxis_core.Properties.property3 p ~i ~j ~m1 ~m2 ~set:sol.Mis.Exact.set in
    check (label "property 3") true r.Maxis_core.Properties.holds
  end;
  (* Claim 4 on a random distinct tuple *)
  if P.k p >= t then begin
    let ms = Array.of_list (Prng.sample_without_replacement rng (P.k p) t) in
    check (label "claim 4") true (Maxis_core.Claims.claim4 p ~ms).Maxis_core.Claims.holds
  end;
  (* player protocol equivalence on Luby *)
  let mono = Congest.Runtime.run Congest.Algo_luby.mis g in
  let multi = Maxis_core.Player_sim.run Congest.Algo_luby.mis inst in
  check (label "player sim equivalence") true
    (mono.Congest.Runtime.outputs = multi.Maxis_core.Player_sim.outputs
    && Congest.Trace.cut_bits mono.Congest.Runtime.trace inst.Family.partition
       = Commcx.Blackboard.bits_written multi.Maxis_core.Player_sim.board);
  (* fault injection: a random adversarial plan each iteration.  Hardened
     Luby must reproduce the fault-free outputs exactly, and the faulty
     execution must replay bit-identically from (config.seed, plan). *)
  let plan =
    Congest.Faults.plan
      ~default:
        (Congest.Faults.link ~drop:(Prng.float rng 0.2)
           ~duplicate:(Prng.float rng 0.1) ~corrupt:(Prng.float rng 0.1)
           ~max_delay:(Prng.int rng 3) ())
      (Prng.int rng 1_000_000)
  in
  (* 131-bit hardened frames: factor 131 covers any id width.  config.seed
     stays at the default so the inner randomness matches [mono]. *)
  let faulty_config =
    {
      Congest.Runtime.default_config with
      Congest.Runtime.bandwidth_factor = 131;
      faults = Some plan;
    }
  in
  let hardened () =
    Congest.Runtime.run ~config:faulty_config
      (Congest.Faults.harden Congest.Algo_luby.mis)
      g
  in
  let h1 = hardened () in
  check (label "hardened luby = fault-free luby") true
    (h1.Congest.Runtime.all_halted
    && h1.Congest.Runtime.outputs = mono.Congest.Runtime.outputs);
  let h2 = hardened () in
  check (label "fault replay determinism") true
    (Congest.Trace.digest h1.Congest.Runtime.trace
    = Congest.Trace.digest h2.Congest.Runtime.trace);
  (* greedy guarantee + bound sandwich *)
  let cw, greedy, cover = Mis.Bounds.sandwich g in
  check (label "sandwich") true
    (cw <= float_of_int greedy +. 1e-9 && greedy <= opt && opt <= cover);
  let delta = Graph.max_degree g in
  check (label "delta guarantee") true (greedy * (delta + 1) >= opt)

let test_soak () =
  let root = Prng.create root_seed in
  for iteration = 1 to iterations do
    (* Each iteration gets its own split stream: a failure at iteration
       [i] reproduces without replaying iterations [1..i-1] by splitting
       the root [i] times. *)
    soak_once (Prng.split root) iteration
  done

let () =
  Alcotest.run "soak"
    [
      ( "end-to-end",
        [
          Alcotest.test_case
            (Printf.sprintf
               "randomized cross-validation (%d iterations, root seed %#x)"
               iterations root_seed)
            `Slow test_soak;
        ] );
    ]
