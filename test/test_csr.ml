(* Differential battery for the CSR graph core and the large-n engine:
   Csr ≡ Graph property-by-property, exact-solver parity across the
   representations, and run ≡ run_csr ≡ run_flat executor parity. *)

module Graph = Wgraph.Graph
module Csr = Wgraph.Csr
module Build = Wgraph.Build
module Bitset = Stdx.Bitset
module Prng = Stdx.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let random_graph seed nn =
  let n = 1 + (nn mod 40) in
  let rng = Prng.create (Hashtbl.hash (seed, nn, "csr")) in
  let g = Build.erdos_renyi rng n 0.3 in
  Build.random_weights rng g 9;
  g

(* ------------------------------------------------------------------ *)
(* Builder semantics *)

let test_builder_basics () =
  let b = Csr.Builder.create ~default_weight:3 4 in
  Csr.Builder.add_edge b 0 1;
  Csr.Builder.add_edge b 1 0;
  (* duplicate *)
  Csr.Builder.add_edge b 0 1;
  Csr.Builder.add_edge b 2 1;
  Csr.Builder.set_weight b 2 7;
  Csr.Builder.set_label b 2 "two";
  let c = Csr.Builder.finish b in
  check_int "n" 4 (Csr.n c);
  check_int "edges deduped" 2 (Csr.edge_count c);
  check "has 0-1" true (Csr.has_edge c 0 1);
  check "symmetric" true (Csr.has_edge c 1 0);
  check "no 0-2" false (Csr.has_edge c 0 2);
  check_int "degree 1" 2 (Csr.degree c 1);
  check_int "degree 3" 0 (Csr.degree c 3);
  check_int "default weight" 3 (Csr.weight c 0);
  check_int "set weight" 7 (Csr.weight c 2);
  Alcotest.(check string) "label set" "two" (Csr.label c 2);
  Alcotest.(check string) "label default" "0" (Csr.label c 0)

let test_builder_errors () =
  let b = Csr.Builder.create 3 in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Csr.Builder.add_edge: self-loop") (fun () ->
      Csr.Builder.add_edge b 1 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Csr.Builder: node 3 out of range [0, 3)") (fun () ->
      Csr.Builder.add_edge b 0 3);
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Csr.Builder.set_weight: negative weight") (fun () ->
      Csr.Builder.set_weight b 0 (-1))

let test_builder_snapshot () =
  let b = Csr.Builder.create 3 in
  Csr.Builder.add_edge b 0 1;
  let c1 = Csr.Builder.finish b in
  Csr.Builder.add_edge b 1 2;
  let c2 = Csr.Builder.finish b in
  check_int "snapshot unchanged" 1 (Csr.edge_count c1);
  check_int "later finish sees more" 2 (Csr.edge_count c2)

let test_reweight () =
  let b = Csr.Builder.create 3 in
  Csr.Builder.add_edge b 0 1;
  let c = Csr.Builder.finish b in
  let c' = Csr.reweight c (fun v -> 10 + v) in
  check_int "new weight" 12 (Csr.weight c' 2);
  check_int "original untouched" 1 (Csr.weight c 2);
  check "edges shared" true (Csr.has_edge c' 0 1);
  check "equal ignores nothing: weights differ" false (Csr.equal c c')

(* ------------------------------------------------------------------ *)
(* Csr ≡ Graph differential properties *)

let conversion_matches =
  QCheck.Test.make ~name:"of_graph matches Graph property-by-property"
    ~count:120
    QCheck.(pair small_int small_int)
    (fun (seed, nn) ->
      let g = random_graph seed nn in
      let c = Csr.of_graph g in
      let n = Graph.n g in
      Csr.n c = n
      && Csr.edge_count c = Graph.edge_count g
      && Csr.max_degree c = Graph.max_degree g
      && Csr.total_weight c = Graph.total_weight g
      && List.for_all
           (fun v ->
             Csr.degree c v = Graph.degree g v
             && Csr.weight c v = Graph.weight g v
             && Csr.label c v = Graph.label g v
             && Csr.neighbors_array c v
                = Bitset.to_array (Graph.neighbors g v)
             && List.for_all
                  (fun u -> u = v || Csr.has_edge c v u = Graph.has_edge g v u)
                  (List.init n Fun.id))
           (List.init n Fun.id))

let round_trip =
  QCheck.Test.make ~name:"to_graph (of_graph g) = g (weights and labels)"
    ~count:120
    QCheck.(pair small_int small_int)
    (fun (seed, nn) ->
      let g = random_graph seed nn in
      let g' = Csr.to_graph (Csr.of_graph g) in
      Graph.equal g g'
      && List.for_all
           (fun v -> Graph.label g v = Graph.label g' v)
           (List.init (Graph.n g) Fun.id))

let builder_equals_of_graph =
  QCheck.Test.make ~name:"Builder over the edge list = of_graph" ~count:120
    QCheck.(pair small_int small_int)
    (fun (seed, nn) ->
      let g = random_graph seed nn in
      let b = Csr.Builder.create (Graph.n g) in
      (* insert in reverse with duplicates to exercise sort + dedup *)
      let edges = Graph.edges g in
      List.iter (fun (u, v) -> Csr.Builder.add_edge b v u) (List.rev edges);
      List.iter (fun (u, v) -> Csr.Builder.add_edge b u v) edges;
      for v = 0 to Graph.n g - 1 do
        Csr.Builder.set_weight b v (Graph.weight g v)
      done;
      Csr.equal (Csr.Builder.finish b) (Csr.of_graph g))

let set_weight_of_matches =
  QCheck.Test.make ~name:"set_weight_of matches Graph" ~count:60
    QCheck.(pair small_int small_int)
    (fun (seed, nn) ->
      let g = random_graph seed nn in
      let c = Csr.of_graph g in
      let rng = Prng.create (Hashtbl.hash (nn, seed)) in
      let s = Bitset.create (Graph.n g) in
      for v = 0 to Graph.n g - 1 do
        if Prng.bool rng then Bitset.add s v
      done;
      Csr.set_weight_of c s = Graph.set_weight_of g s)

(* ------------------------------------------------------------------ *)
(* Exact-solver parity across representations *)

let solver_parity =
  QCheck.Test.make ~name:"Mis.Exact.solve parity on <=14-vertex graphs"
    ~count:80
    QCheck.(pair small_int small_int)
    (fun (seed, nn) ->
      let n = 1 + (nn mod 14) in
      let rng = Prng.create (Hashtbl.hash (seed, nn, "mis")) in
      let g = Build.erdos_renyi rng n 0.4 in
      Build.random_weights rng g 7;
      let direct = (Mis.Exact.solve g).Mis.Exact.weight in
      let via_csr =
        (Mis.Exact.solve (Csr.to_graph (Csr.of_graph g))).Mis.Exact.weight
      in
      direct = via_csr)

(* ------------------------------------------------------------------ *)
(* Executor parity: run ≡ run_csr ≡ run_flat *)

let trace_summary t =
  ( Congest.Trace.rounds t,
    Congest.Trace.total_messages t,
    Congest.Trace.total_bits t,
    Congest.Trace.digest t )

let run_all_three (type a) (prog : a Congest.Program.t)
    (fp : a Congest.Fastpath.t) g =
  let c = Csr.of_graph g in
  let r1 = Congest.Runtime.run prog g in
  let r2 = Congest.Runtime.run_csr prog c in
  let r3 = Congest.Runtime.run_flat fp c in
  let same_results (a : a Congest.Runtime.result)
      (b : a Congest.Runtime.result) =
    a.Congest.Runtime.outputs = b.Congest.Runtime.outputs
    && a.Congest.Runtime.rounds_executed = b.Congest.Runtime.rounds_executed
    && a.Congest.Runtime.all_halted = b.Congest.Runtime.all_halted
    && trace_summary a.Congest.Runtime.trace
       = trace_summary b.Congest.Runtime.trace
  in
  same_results r1 r2 && same_results r1 r3

let flood_parity =
  QCheck.Test.make ~name:"flood: run = run_csr = run_flat" ~count:60
    QCheck.(pair small_int small_int)
    (fun (seed, nn) ->
      let g = random_graph seed nn in
      run_all_three
        (Congest.Algo_flood.max_id ~rounds:12)
        (Congest.Fastpath.max_id ~rounds:12)
        g)

let bfs_parity =
  QCheck.Test.make ~name:"bfs: run = run_csr = run_flat" ~count:60
    QCheck.(pair small_int small_int)
    (fun (seed, nn) ->
      let g = random_graph seed nn in
      run_all_three
        (Congest.Algo_bfs.distances ~root:0 ~rounds:12)
        (Congest.Fastpath.bfs_distances ~root:0 ~rounds:12)
        g)

let luby_parity =
  QCheck.Test.make ~name:"luby: run = run_csr = run_flat (incl. PRNG draws)"
    ~count:60
    QCheck.(pair small_int small_int)
    (fun (seed, nn) ->
      let g = random_graph seed nn in
      run_all_three Congest.Algo_luby.mis Congest.Fastpath.luby_mis g)

(* ------------------------------------------------------------------ *)
(* Domain-sharded executor parity: run_flat_par = run_flat at every
   pool width, cold and warm, Full and Light traces. *)

let par_pools =
  lazy (List.map (fun jobs -> Exec.Pool.create ~jobs ()) [ 1; 2; 3; 8 ])

let run_par_matches (type a) (fp : a Congest.Fastpath.t) g =
  let c = Csr.of_graph g in
  let seq = Congest.Runtime.run_flat fp c in
  let seq_light_digest =
    let tr = Congest.Trace.create ~mode:Congest.Trace.Light () in
    let r = Congest.Runtime.run_flat ~trace:tr fp c in
    Congest.Trace.digest r.Congest.Runtime.trace
  in
  let same (a : a Congest.Runtime.result) (b : a Congest.Runtime.result) =
    a.Congest.Runtime.outputs = b.Congest.Runtime.outputs
    && a.Congest.Runtime.rounds_executed = b.Congest.Runtime.rounds_executed
    && a.Congest.Runtime.all_halted = b.Congest.Runtime.all_halted
    && trace_summary a.Congest.Runtime.trace
       = trace_summary b.Congest.Runtime.trace
  in
  List.for_all
    (fun pool ->
      let cold = Congest.Runtime.run_flat_par ~pool fp c in
      (* Warm: same pool, buffers of the previous run already grown. *)
      let warm = Congest.Runtime.run_flat_par ~pool fp c in
      let light =
        let tr = Congest.Trace.create ~mode:Congest.Trace.Light () in
        let r = Congest.Runtime.run_flat_par ~trace:tr ~pool fp c in
        Congest.Trace.digest r.Congest.Runtime.trace
      in
      same seq cold && same seq warm && light = seq_light_digest)
    (Lazy.force par_pools)

let flood_par_parity =
  QCheck.Test.make ~name:"flood: run_flat_par = run_flat, jobs in {1,2,3,8}"
    ~count:30
    QCheck.(pair small_int small_int)
    (fun (seed, nn) ->
      run_par_matches (Congest.Fastpath.max_id ~rounds:12) (random_graph seed nn))

let bfs_par_parity =
  QCheck.Test.make ~name:"bfs: run_flat_par = run_flat, jobs in {1,2,3,8}"
    ~count:30
    QCheck.(pair small_int small_int)
    (fun (seed, nn) ->
      run_par_matches
        (Congest.Fastpath.bfs_distances ~root:0 ~rounds:12)
        (random_graph seed nn))

let luby_par_parity =
  QCheck.Test.make
    ~name:"luby: run_flat_par = run_flat (incl. PRNG draws), jobs in {1,2,3,8}"
    ~count:30
    QCheck.(pair small_int small_int)
    (fun (seed, nn) -> run_par_matches Congest.Fastpath.luby_mis (random_graph seed nn))

let test_par_rejects () =
  let g = Build.path 4 in
  let c = Csr.of_graph g in
  let fp = Congest.Fastpath.max_id ~rounds:4 in
  Exec.Pool.with_pool ~jobs:2 (fun pool ->
      (try
         ignore
           (Congest.Runtime.run_flat_par
              ~config:
                {
                  Congest.Runtime.default_config with
                  Congest.Runtime.mode = Congest.Runtime.Broadcast;
                }
              ~pool fp c);
         Alcotest.fail "broadcast accepted"
       with Invalid_argument _ -> ());
      let plan =
        Congest.Faults.plan ~default:(Congest.Faults.link ~drop:0.5 ()) 1
      in
      (try
         ignore
           (Congest.Runtime.run_flat_par
              ~config:
                {
                  Congest.Runtime.default_config with
                  Congest.Runtime.faults = Some plan;
                }
              ~pool fp c);
         Alcotest.fail "faults accepted"
       with Invalid_argument _ -> ());
      try
        ignore
          (Congest.Runtime.run_flat_par ~alloc_probe:[| 0.0 |] ~pool fp c);
        Alcotest.fail "short alloc_probe accepted"
      with Invalid_argument _ -> ())

(* The chunk decomposition is a partition of [lo, hi) in ascending
   order with sizes differing by at most one. *)
let chunk_bounds_partition =
  QCheck.Test.make ~name:"Pool.chunk_bounds partitions the range" ~count:200
    QCheck.(triple small_int small_int small_int)
    (fun (j, l, len) ->
      let jobs = 1 + (j mod 9) in
      let lo = l mod 50 in
      let hi = lo + (len mod 70) in
      let pieces =
        List.init jobs (fun i -> Exec.Pool.chunk_bounds ~jobs ~lo ~hi i)
      in
      let sizes = List.map (fun (a, b) -> b - a) pieces in
      let mn = List.fold_left min max_int sizes
      and mx = List.fold_left max 0 sizes in
      let rec contiguous at = function
        | [] -> at = hi
        | (a, b) :: rest -> a = at && b >= a && contiguous b rest
      in
      contiguous lo pieces && mx - mn <= 1)

let test_flat_rejects () =
  let g = Build.path 4 in
  let c = Csr.of_graph g in
  let fp = Congest.Fastpath.max_id ~rounds:4 in
  (try
     ignore
       (Congest.Runtime.run_flat
          ~config:
            {
              Congest.Runtime.default_config with
              Congest.Runtime.mode = Congest.Runtime.Broadcast;
            }
          fp c);
     Alcotest.fail "broadcast accepted"
   with Invalid_argument _ -> ());
  let plan =
    Congest.Faults.plan ~default:(Congest.Faults.link ~drop:0.5 ()) 1
  in
  try
    ignore
      (Congest.Runtime.run_flat
         ~config:
           { Congest.Runtime.default_config with Congest.Runtime.faults = Some plan }
         fp c);
    Alcotest.fail "faults accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Gadget construction parity *)

let test_linear_csr_matches () =
  let p = Maxis_core.Params.figure_params ~players:3 in
  let g, part = Maxis_core.Linear_family.fixed p in
  let c, part' = Maxis_core.Linear_family.fixed_csr p in
  check "fixed_csr = of_graph fixed" true (Csr.equal c (Csr.of_graph g));
  check "partitions equal" true (part = part')

let test_linear_instance_csr_matches () =
  let p = Maxis_core.Params.figure_params ~players:2 in
  let x =
    Commcx.Inputs.gen_promise (Prng.create 7) ~k:(Maxis_core.Params.k p) ~t:2
      ~intersecting:false
  in
  let inst = Maxis_core.Linear_family.instance p x in
  let c, part = Maxis_core.Linear_family.instance_csr p x in
  check "structure" true
    (Csr.equal (Csr.reweight c (fun _ -> 1))
       (Csr.reweight (Csr.of_graph inst.Maxis_core.Family.graph) (fun _ -> 1)));
  check "partition" true (part = inst.Maxis_core.Family.partition);
  let ok = ref true in
  for v = 0 to Csr.n c - 1 do
    if Csr.weight c v <> Graph.weight inst.Maxis_core.Family.graph v then
      ok := false
  done;
  check "weights" true !ok

let test_quadratic_csr_matches () =
  let p = Maxis_core.Params.figure_params ~players:2 in
  let g, part = Maxis_core.Quadratic_family.fixed p in
  let c, part' = Maxis_core.Quadratic_family.fixed_csr p in
  check "fixed_csr = of_graph fixed" true (Csr.equal c (Csr.of_graph g));
  check "partitions equal" true (part = part');
  (* Sharded finish produces the identical CSR at every pool width. *)
  Exec.Pool.with_pool ~jobs:3 (fun pool ->
      let shard ~lo ~hi f = Exec.Pool.run_range pool ~lo ~hi f in
      let c3, _ = Maxis_core.Quadratic_family.fixed_csr ~shard p in
      check "sharded finish equal" true (Csr.equal c c3))

let test_quadratic_instance_csr_matches () =
  let p = Maxis_core.Params.figure_params ~players:2 in
  let x =
    Commcx.Inputs.gen_promise (Prng.create 11)
      ~k:(Maxis_core.Quadratic_family.string_length p)
      ~t:2 ~intersecting:true
  in
  let inst = Maxis_core.Quadratic_family.instance p x in
  let c, part = Maxis_core.Quadratic_family.instance_csr p x in
  check "structure" true
    (Csr.equal (Csr.reweight c (fun _ -> 1))
       (Csr.reweight (Csr.of_graph inst.Maxis_core.Family.graph) (fun _ -> 1)));
  check "partition" true (part = inst.Maxis_core.Family.partition);
  let ok = ref true in
  for v = 0 to Csr.n c - 1 do
    if Csr.weight c v <> Graph.weight inst.Maxis_core.Family.graph v then
      ok := false
  done;
  check "weights" true !ok;
  Exec.Pool.with_pool ~jobs:2 (fun pool ->
      let shard ~lo ~hi f = Exec.Pool.run_range pool ~lo ~hi f in
      let c2, _ = Maxis_core.Quadratic_family.instance_csr ~shard p x in
      check "sharded instance equal" true (Csr.equal c c2))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "csr"
    [
      ( "builder",
        [
          Alcotest.test_case "basics" `Quick test_builder_basics;
          Alcotest.test_case "errors" `Quick test_builder_errors;
          Alcotest.test_case "snapshot" `Quick test_builder_snapshot;
          Alcotest.test_case "reweight" `Quick test_reweight;
        ] );
      qsuite "differential"
        [
          conversion_matches;
          round_trip;
          builder_equals_of_graph;
          set_weight_of_matches;
          solver_parity;
        ];
      qsuite "executors" [ flood_parity; bfs_parity; luby_parity ];
      qsuite "executors-par"
        [
          flood_par_parity;
          bfs_par_parity;
          luby_par_parity;
          chunk_bounds_partition;
        ];
      ( "executors-edge",
        [
          Alcotest.test_case "run_flat rejects" `Quick test_flat_rejects;
          Alcotest.test_case "run_flat_par rejects" `Quick test_par_rejects;
        ] );
      ( "gadgets",
        [
          Alcotest.test_case "fixed_csr" `Quick test_linear_csr_matches;
          Alcotest.test_case "instance_csr" `Quick
            test_linear_instance_csr_matches;
          Alcotest.test_case "quadratic fixed_csr" `Quick
            test_quadratic_csr_matches;
          Alcotest.test_case "quadratic instance_csr" `Quick
            test_quadratic_instance_csr_matches;
        ] );
    ]
