(* Tests for the MIS solvers: exact branch-and-bound vs brute force,
   greedy heuristics, bound sandwich, verifiers. *)

module Graph = Wgraph.Graph
module Build = Wgraph.Build
module Bitset = Stdx.Bitset
module Prng = Stdx.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Exact solver on known graphs *)

let test_exact_empty_graph () =
  let s = Mis.Exact.solve (Graph.create 0) in
  check_int "weight" 0 s.Mis.Exact.weight

let test_exact_edgeless () =
  let g = Graph.create 6 in
  Graph.set_weight g 3 5;
  let s = Mis.Exact.solve g in
  check_int "takes everything" 10 s.Mis.Exact.weight;
  check_int "all nodes" 6 (Bitset.cardinal s.Mis.Exact.set)

let test_exact_clique () =
  let g = Build.complete 7 in
  Graph.set_weight g 4 3;
  let s = Mis.Exact.solve g in
  check_int "heaviest node" 3 s.Mis.Exact.weight;
  check_int "one node" 1 (Bitset.cardinal s.Mis.Exact.set);
  check "it is node 4" true (Bitset.mem s.Mis.Exact.set 4)

let test_exact_path () =
  (* Path P5 unweighted: alpha = 3. *)
  check_int "P5" 3 (Mis.Exact.opt (Build.path 5));
  (* Weighted path 1-10-1: take the middle. *)
  let g = Build.path 3 in
  Graph.set_weight g 1 10;
  check_int "weighted middle" 10 (Mis.Exact.opt g)

let test_exact_cycle () =
  check_int "C5" 2 (Mis.Exact.opt (Build.cycle 5));
  check_int "C6" 3 (Mis.Exact.opt (Build.cycle 6))

let test_exact_bipartite () =
  let g = Build.complete_bipartite 3 5 in
  check_int "larger side" 5 (Mis.Exact.opt g)

let test_exact_star_weighted () =
  let g = Build.star 6 in
  Graph.set_weight g 0 100;
  check_int "heavy center beats leaves" 100 (Mis.Exact.opt g)

let test_exact_solution_verified () =
  let rng = Prng.create 21 in
  for _ = 1 to 10 do
    let g = Build.erdos_renyi rng 25 0.3 in
    Build.random_weights rng g 5;
    let s = Mis.Exact.solve g in
    check "verifier accepts" true
      (Mis.Verify.solution_ok g ~claimed_weight:s.Mis.Exact.weight s.Mis.Exact.set)
  done

let test_exact_too_large_rejected () =
  Alcotest.check_raises "max_nodes"
    (Invalid_argument
       (Printf.sprintf "Mis.Exact.solve: %d nodes exceeds max_nodes=%d" 4001
          Mis.Exact.max_nodes))
    (fun () -> ignore (Mis.Exact.solve (Graph.create 4001)))

let test_solve_induced () =
  let g = Build.path 5 in
  Graph.set_weight g 0 4;
  (* Induced on {0,1,2}: best is {0,2} = 5. *)
  let s = Mis.Exact.solve_induced g (Bitset.of_list 5 [ 0; 1; 2 ]) in
  check_int "induced weight" 5 s.Mis.Exact.weight;
  check "within candidates" true
    (Bitset.subset s.Mis.Exact.set (Bitset.of_list 5 [ 0; 1; 2 ]))

(* ------------------------------------------------------------------ *)
(* Brute force cross-check *)

let test_brute_matches_known () =
  check_int "C5" 2 (fst (Mis.Brute.solve (Build.cycle 5)));
  check_int "K4" 1 (fst (Mis.Brute.solve (Build.complete 4)));
  Alcotest.check_raises "too big" (Invalid_argument "Mis.Brute.solve: too many nodes")
    (fun () -> ignore (Mis.Brute.solve (Graph.create 25)))

let prop_exact_equals_brute =
  QCheck.Test.make ~name:"exact = brute force on random graphs" ~count:120
    QCheck.(triple small_int small_int small_int) (fun (seed, nn, wmax) ->
      let n = 1 + (nn mod 14) in
      let rng = Prng.create seed in
      let g = Build.erdos_renyi rng n 0.35 in
      Build.random_weights rng g (1 + (wmax mod 6));
      let exact = Mis.Exact.solve g in
      let brute_w, _ = Mis.Brute.solve g in
      exact.Mis.Exact.weight = brute_w
      && Mis.Verify.solution_ok g ~claimed_weight:exact.Mis.Exact.weight
           exact.Mis.Exact.set)

let prop_exact_dense_graphs =
  QCheck.Test.make ~name:"exact = brute on dense graphs" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let g = Build.erdos_renyi rng 12 0.7 in
      Build.random_weights rng g 8;
      Mis.Exact.opt g = fst (Mis.Brute.solve g))

(* ------------------------------------------------------------------ *)
(* Bron-Kerbosch differential oracle *)

let test_bk_known_graphs () =
  check_int "C5" 2 (fst (Mis.Bron_kerbosch.solve (Build.cycle 5)));
  check_int "K7" 1 (fst (Mis.Bron_kerbosch.solve (Build.complete 7)));
  check_int "edgeless" 6 (fst (Mis.Bron_kerbosch.solve (Graph.create 6)));
  check_int "P5" 3 (fst (Mis.Bron_kerbosch.solve (Build.path 5)));
  let g = Build.star 6 in
  Graph.set_weight g 0 100;
  check_int "heavy star" 100 (fst (Mis.Bron_kerbosch.solve g))

let test_bk_witness_valid () =
  let rng = Prng.create 41 in
  for _ = 1 to 10 do
    let g = Build.erdos_renyi rng 20 0.4 in
    Build.random_weights rng g 5;
    let w, s = Mis.Bron_kerbosch.solve g in
    check "independent" true (Wgraph.Check.is_independent g s);
    check_int "weight" w (Graph.set_weight_of g s)
  done

let prop_bk_equals_exact =
  QCheck.Test.make ~name:"Bron-Kerbosch = branch&bound (random graphs)"
    ~count:120 QCheck.(triple small_int small_int small_int)
    (fun (seed, nn, dd) ->
      let n = 1 + (nn mod 30) in
      let p = 0.15 +. (0.1 *. float_of_int (dd mod 7)) in
      let rng = Prng.create seed in
      let g = Build.erdos_renyi rng n p in
      Build.random_weights rng g 6;
      fst (Mis.Bron_kerbosch.solve g) = Mis.Exact.opt g)

let test_bk_equals_exact_on_gadgets () =
  (* The differential check on the actual lower-bound instances. *)
  let p = Maxis_core.Params.make ~alpha:1 ~ell:4 ~players:2 in
  let rng = Prng.create 43 in
  List.iter
    (fun intersecting ->
      let x =
        Commcx.Inputs.gen_promise rng ~k:(Maxis_core.Params.k p) ~t:2
          ~intersecting
      in
      let inst = Maxis_core.Linear_family.instance p x in
      let g = inst.Maxis_core.Family.graph in
      check_int "agree on gadget" (Mis.Exact.opt g)
        (fst (Mis.Bron_kerbosch.solve g)))
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* Greedy heuristics *)

let test_greedy_produce_independent_sets () =
  let rng = Prng.create 31 in
  for _ = 1 to 10 do
    let g = Build.erdos_renyi rng 30 0.2 in
    Build.random_weights rng g 4;
    List.iter
      (fun h ->
        let w, s = Mis.Greedy.run h g in
        check (h.Mis.Greedy.name ^ " independent") true
          (Wgraph.Check.is_independent g s);
        check (h.Mis.Greedy.name ^ " maximal") true
          (Wgraph.Check.is_maximal_independent g s);
        check_int (h.Mis.Greedy.name ^ " weight") (Graph.set_weight_of g s) w)
      Mis.Greedy.all
  done

let test_greedy_below_exact () =
  let rng = Prng.create 37 in
  for _ = 1 to 10 do
    let g = Build.erdos_renyi rng 16 0.4 in
    Build.random_weights rng g 4;
    let opt = Mis.Exact.opt g in
    List.iter
      (fun h -> check "greedy <= opt" true (fst (Mis.Greedy.run h g) <= opt))
      Mis.Greedy.all
  done

let test_max_weight_first_on_star () =
  (* Heavy center: greedy must take it, not the leaves. *)
  let g = Build.star 5 in
  Graph.set_weight g 0 10;
  let w, _ = Mis.Greedy.run Mis.Greedy.max_weight_first g in
  check_int "center" 10 w

let test_min_degree_on_star () =
  (* Leaves have lower degree: min-degree greedy picks all 4. *)
  let g = Build.star 5 in
  let w, _ = Mis.Greedy.run Mis.Greedy.min_degree_first g in
  check_int "leaves" 4 w

(* ------------------------------------------------------------------ *)
(* Bounds *)

let test_bounds_on_known () =
  let g = Build.cycle 6 in
  check_int "clique cover C6 >= 3" 3 (Mis.Bounds.clique_cover_upper g);
  Alcotest.(check (float 1e-9)) "caro-wei C6" 2.0 (Mis.Bounds.caro_wei_lower g);
  check_int "greedy C6" 3 (Mis.Bounds.greedy_lower g)

let test_vc_dual_upper_known () =
  (* The vertex-cover dual bound is what certifies the ub of a budgeted
     solve's interval, so its soundness is safety-critical. *)
  let g = Build.cycle 6 in
  check "vc dual sound on C6" true (Mis.Bounds.vc_dual_upper g >= Mis.Exact.opt g);
  let k5 = Build.complete 5 in
  check "vc dual sound on K5" true
    (Mis.Bounds.vc_dual_upper k5 >= Mis.Exact.opt k5)

let prop_vc_dual_upper_sound =
  QCheck.Test.make ~name:"opt <= vc_dual_upper" ~count:80
    QCheck.(pair small_int small_int) (fun (seed, nn) ->
      let n = 2 + (nn mod 12) in
      let rng = Prng.create seed in
      let g = Build.erdos_renyi rng n 0.35 in
      Build.random_weights rng g 5;
      Mis.Exact.opt g <= Mis.Bounds.vc_dual_upper g)

let prop_bound_sandwich =
  QCheck.Test.make ~name:"caro_wei <= greedy <= opt <= clique_cover" ~count:80
    QCheck.(pair small_int small_int) (fun (seed, nn) ->
      let n = 2 + (nn mod 12) in
      let rng = Prng.create seed in
      let g = Build.erdos_renyi rng n 0.35 in
      Build.random_weights rng g 5;
      let cw, greedy, cover = Mis.Bounds.sandwich g in
      let opt = Mis.Exact.opt g in
      cw <= float_of_int greedy +. 1e-9
      && greedy <= opt && opt <= cover)

(* ------------------------------------------------------------------ *)
(* Verify *)

let test_verify_reports () =
  let g = Build.path 3 in
  let good = Bitset.of_list 3 [ 0; 2 ] in
  let r = Mis.Verify.solution g ~claimed_weight:2 good in
  check "ok" true r.Mis.Verify.ok;
  let bad_weight = Mis.Verify.solution g ~claimed_weight:3 good in
  check "weight mismatch flagged" false bad_weight.Mis.Verify.ok;
  check "independent though" true bad_weight.Mis.Verify.independent;
  check_int "actual" 2 bad_weight.Mis.Verify.actual_weight;
  let not_indep = Mis.Verify.solution g ~claimed_weight:2 (Bitset.of_list 3 [ 0; 1 ]) in
  check "dependence flagged" false not_indep.Mis.Verify.ok;
  Alcotest.(check (list (pair int int))) "violations" [ (0, 1) ]
    not_indep.Mis.Verify.violations

let test_approximation_ratio () =
  Alcotest.(check (float 1e-9)) "3/4" 0.75 (Mis.Verify.approximation_ratio ~opt:4 ~achieved:3);
  Alcotest.check_raises "opt 0" (Invalid_argument "Verify.approximation_ratio: opt must be > 0")
    (fun () -> ignore (Mis.Verify.approximation_ratio ~opt:0 ~achieved:0))

(* ------------------------------------------------------------------ *)
(* Gadget-shaped stress: unions of cliques (the solver's home turf) *)

let test_exact_on_union_of_cliques () =
  (* 4 cliques of 5 nodes with one heavy node each: OPT takes the heavy
     node of each clique. *)
  let g = Graph.create 20 in
  for c = 0 to 3 do
    Build.make_clique_array g (Array.init 5 (fun i -> (5 * c) + i));
    Graph.set_weight g (5 * c) 7
  done;
  let s = Mis.Exact.solve g in
  check_int "weight" 28 s.Mis.Exact.weight;
  check_int "four nodes" 4 (Bitset.cardinal s.Mis.Exact.set)

let test_exact_complement_of_matching_block () =
  (* Two q-cliques joined by complement of matching: an independent set can
     take one matched pair, weight 2. *)
  let q = 6 in
  let g = Graph.create (2 * q) in
  let xs = Array.init q Fun.id and ys = Array.init q (fun i -> q + i) in
  Build.make_clique_array g xs;
  Build.make_clique_array g ys;
  Build.connect_complement_of_matching g xs ys;
  check_int "matched pair" 2 (Mis.Exact.opt g)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "mis"
    [
      ( "exact",
        [
          Alcotest.test_case "empty" `Quick test_exact_empty_graph;
          Alcotest.test_case "edgeless" `Quick test_exact_edgeless;
          Alcotest.test_case "clique" `Quick test_exact_clique;
          Alcotest.test_case "path" `Quick test_exact_path;
          Alcotest.test_case "cycle" `Quick test_exact_cycle;
          Alcotest.test_case "bipartite" `Quick test_exact_bipartite;
          Alcotest.test_case "weighted star" `Quick test_exact_star_weighted;
          Alcotest.test_case "solutions verified" `Quick test_exact_solution_verified;
          Alcotest.test_case "size limit" `Quick test_exact_too_large_rejected;
          Alcotest.test_case "induced" `Quick test_solve_induced;
          Alcotest.test_case "union of cliques" `Quick test_exact_on_union_of_cliques;
          Alcotest.test_case "complement-of-matching block" `Quick
            test_exact_complement_of_matching_block;
        ] );
      ( "brute",
        [ Alcotest.test_case "known values" `Quick test_brute_matches_known ] );
      ( "bron-kerbosch",
        [
          Alcotest.test_case "known graphs" `Quick test_bk_known_graphs;
          Alcotest.test_case "witness valid" `Quick test_bk_witness_valid;
          Alcotest.test_case "agrees on gadgets" `Quick test_bk_equals_exact_on_gadgets;
        ] );
      qsuite "exact-props"
        [ prop_exact_equals_brute; prop_exact_dense_graphs; prop_bk_equals_exact ];
      ( "greedy",
        [
          Alcotest.test_case "independent + maximal" `Quick
            test_greedy_produce_independent_sets;
          Alcotest.test_case "below exact" `Quick test_greedy_below_exact;
          Alcotest.test_case "max-weight on star" `Quick test_max_weight_first_on_star;
          Alcotest.test_case "min-degree on star" `Quick test_min_degree_on_star;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "known graphs" `Quick test_bounds_on_known;
          Alcotest.test_case "vc dual upper" `Quick test_vc_dual_upper_known;
        ] );
      qsuite "bounds-props" [ prop_bound_sandwich; prop_vc_dual_upper_sound ];
      ( "verify",
        [
          Alcotest.test_case "reports" `Quick test_verify_reports;
          Alcotest.test_case "ratio" `Quick test_approximation_ratio;
        ] );
    ]
