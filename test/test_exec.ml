(* Tests for the Exec subsystem: the deterministic domain pool, the
   content-addressed result cache, and the parallel exact MaxIS solver
   built on top of them. *)

module Pool = Exec.Pool
module Cache = Exec.Cache
module Prng = Stdx.Prng
module Bitset = Stdx.Bitset
module Build = Wgraph.Build

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let widths = [ 1; 2; 8 ]

(* ------------------------------------------------------------------ *)
(* Pool: determinism *)

let test_pool_map_matches_sequential () =
  let xs = Array.init 100 Fun.id in
  let f x = (x * x) + 1 in
  let expected = Array.map f xs in
  List.iter
    (fun jobs ->
      let got = Pool.with_pool ~jobs (fun pool -> Pool.map pool f xs) in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expected got)
    widths

let test_pool_map_order_under_skew () =
  (* Uneven task costs scramble the claim order; results must still come
     back in input order at every width. *)
  let xs = Array.init 64 Fun.id in
  let f x =
    if x mod 3 = 0 then begin
      (* burn some cycles so late tasks can finish first *)
      let acc = ref 0 in
      for i = 1 to 20_000 do
        acc := !acc + (i mod 7)
      done;
      ignore !acc
    end;
    10 * x
  in
  List.iter
    (fun jobs ->
      let got = Pool.with_pool ~jobs (fun pool -> Pool.map pool f xs) in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        (Array.map (fun x -> 10 * x) xs)
        got)
    widths

let test_pool_map_empty_and_singleton () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          check_int "empty" 0 (Array.length (Pool.map pool succ [||]));
          Alcotest.(check (array int)) "singleton" [| 42 |]
            (Pool.map pool succ [| 41 |]);
          Alcotest.(check (list int)) "map_list" [ 2; 3; 4 ]
            (Pool.map_list pool succ [ 1; 2; 3 ])))
    widths

let test_pool_exception_propagation () =
  (* The lowest-index failing task's exception must surface, at every
     width — exactly what a sequential loop would raise first. *)
  let f x = if x >= 7 then failwith (Printf.sprintf "boom %d" x) else x in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "jobs=%d" jobs)
            (Failure "boom 7")
            (fun () -> ignore (Pool.map pool f (Array.init 32 Fun.id)))))
    widths

let test_pool_nested_map_rejected () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let nested_rejected =
        Pool.map pool
          (fun _ ->
            try
              ignore (Pool.map pool succ [| 1 |]);
              false
            with Invalid_argument _ -> true)
          [| 0; 1; 2; 3 |]
      in
      check "every nested map raises" true (Array.for_all Fun.id nested_rejected))

let test_pool_shutdown () =
  let pool = Pool.create ~jobs:3 () in
  check_int "jobs" 3 (Pool.jobs pool);
  Alcotest.(check (array int)) "usable" [| 1; 2 |] (Pool.map pool succ [| 0; 1 |]);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Exec.Pool.map: pool was shut down") (fun () ->
      ignore (Pool.map pool succ [| 0 |]))

let test_pool_jobs_one_spawns_nothing () =
  (* A width-1 pool is a plain loop, but the lifecycle contract is the
     same at every width: using a pool after shutdown is a bug and
     raises, even though there was nothing to shut down. *)
  let pool = Pool.create ~jobs:1 () in
  Alcotest.(check (array int)) "a loop" [| 5 |] (Pool.map pool succ [| 4 |]);
  Pool.shutdown pool;
  Alcotest.check_raises "map after shutdown raises at jobs=1 too"
    (Invalid_argument "Exec.Pool.map: pool was shut down") (fun () ->
      ignore (Pool.map pool succ [| 4 |]))

let test_pool_create_rejects_bad_width () =
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Exec.Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

let test_pool_default_jobs_env () =
  let set v = Unix.putenv "MAXIS_JOBS" v in
  set "3";
  check_int "explicit" 3 (Pool.default_jobs ());
  set "garbage";
  check_int "garbage -> 1" 1 (Pool.default_jobs ());
  set "-2";
  check_int "negative -> 1" 1 (Pool.default_jobs ());
  set "auto";
  check "auto >= 1" true (Pool.default_jobs () >= 1);
  set ""

(* ------------------------------------------------------------------ *)
(* Pool: run_range, the barrier primitive behind run_flat_par *)

let test_run_range_matches_loop () =
  (* Every index of [lo, hi) touched exactly once, at every width,
     including a non-zero lo and n < jobs. *)
  List.iter
    (fun (lo, hi) ->
      let n = hi - lo in
      List.iter
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              let hits = Array.make (max n 1) 0 in
              Pool.run_range pool ~lo ~hi (fun clo chi ->
                  for i = clo to chi - 1 do
                    hits.(i - lo) <- hits.(i - lo) + 1
                  done);
              check
                (Printf.sprintf "lo=%d hi=%d jobs=%d" lo hi jobs)
                true
                (n = 0 || Array.for_all (fun c -> c = 1) hits)))
        widths)
    [ (0, 100); (7, 40); (0, 3); (5, 5) ]

let test_run_range_chunks_cover_range () =
  (* The chunks a body actually receives concatenate to [lo, hi) in
     ascending order and agree with the pure chunk_bounds map. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let seen = Array.make jobs (-1, -1) in
          let next = Atomic.make 0 in
          Pool.run_range pool ~lo:3 ~hi:45 (fun clo chi ->
              seen.(Atomic.fetch_and_add next 1) <- (clo, chi));
          Array.sort compare seen;
          let expected =
            Array.init jobs (Pool.chunk_bounds ~jobs ~lo:3 ~hi:45)
          in
          Array.sort compare expected;
          check (Printf.sprintf "jobs=%d" jobs) true (seen = expected)))
      widths

let test_run_range_rejects_reverse_range () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.check_raises "hi < lo"
        (Invalid_argument "Exec.Pool.run_range: hi < lo") (fun () ->
          Pool.run_range pool ~lo:4 ~hi:3 (fun _ _ -> ())))

let test_run_range_exception_lowest_chunk () =
  (* Every chunk raises; the lowest chunk's exception must surface at
     every width — the one ascending sequential execution hits first —
     and the pool must stay usable afterwards. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "jobs=%d" jobs)
            (Failure "chunk 0") (fun () ->
              Pool.run_range pool ~lo:0 ~hi:32 (fun clo _ ->
                  failwith (Printf.sprintf "chunk %d" clo)));
          let sum = Atomic.make 0 in
          Pool.run_range pool ~lo:0 ~hi:10 (fun clo chi ->
              for i = clo to chi - 1 do
                ignore (Atomic.fetch_and_add sum i)
              done);
          check_int
            (Printf.sprintf "pool reusable after failure (jobs=%d)" jobs)
            45 (Atomic.get sum)))
    widths

let test_run_range_rapid_reuse () =
  (* Regression for the barrier-reuse race: run_range reuses one batch
     record, so a worker from barrier k sitting between its final
     publish and its next claim overlaps barrier k+1's reset.  Before
     the reset made the primary-counter zeroing its LAST store, that
     worker could claim a chunk of the new barrier mid-reset, lose its
     publication, and hang the barrier forever (no retry exists for
     ranges).  Tiny bodies in a tight back-to-back loop maximise the
     window; pre-fix this hung within a few thousand iterations at
     jobs >= 2. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let sum = Atomic.make 0 in
          for round = 1 to 3_000 do
            Atomic.set sum 0;
            Pool.run_range pool ~lo:0 ~hi:jobs (fun clo chi ->
                ignore (Atomic.fetch_and_add sum (chi - clo)));
            if Atomic.get sum <> jobs then
              Alcotest.failf "jobs=%d round=%d: lost a chunk" jobs round
          done))
    [ 2; 4; 8 ]

let test_run_range_nested_rejected () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let nested_ok = Atomic.make 0 in
      Pool.run_range pool ~lo:0 ~hi:4 (fun _ _ ->
          try Pool.run_range pool ~lo:0 ~hi:1 (fun _ _ -> ())
          with Invalid_argument _ -> ignore (Atomic.fetch_and_add nested_ok 1));
      check_int "every chunk's nested call raised" 2 (Atomic.get nested_ok))

let test_run_range_after_shutdown () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Alcotest.check_raises "run_range after shutdown"
    (Invalid_argument "Exec.Pool.run_range: pool was shut down") (fun () ->
      Pool.run_range pool ~lo:0 ~hi:4 (fun _ _ -> ()))

(* ------------------------------------------------------------------ *)
(* Cache *)

let tmp_dir = "exec_cache_test"

let fresh_cache () =
  let c = Cache.create ~dir:tmp_dir () in
  Cache.clear c;
  c

let some_key ?(solver = "s") () =
  Cache.key ~family:"fam" ~params:"alpha=1, ell=2" ~seed:11 ~solver ()

let test_cache_round_trip () =
  let c = fresh_cache () in
  let k = some_key () in
  check "cold find" true (Cache.find c k = None);
  (* Binary-hostile payload: newlines, NUL, quotes. *)
  let payload = "line1\nline2\x00\"quoted\"\r\ntail" in
  Cache.store c k payload;
  (match Cache.find c k with
  | Some got -> check_string "payload" payload got
  | None -> Alcotest.fail "expected a hit");
  let s = Cache.stats c in
  check_int "hits" 1 s.Cache.hits;
  check_int "misses" 1 s.Cache.misses;
  check_int "stores" 1 s.Cache.stores;
  check_int "bytes_written" (String.length payload) s.Cache.bytes_written;
  Cache.clear c

let test_cache_key_digest_stable () =
  (* Pinned digest: if this moves, every persisted cache silently
     invalidates — bump schema_version instead of changing key layout. *)
  let k =
    Cache.key ~family:"linear" ~params:"alpha=1, ell=4, t=3" ~seed:2020
      ~solver:"exact-mis" ()
  in
  check_string "canonical"
    "v1|family=linear|params=alpha=1, ell=4, t=3|seed=2020|solver=exact-mis|extra="
    (Cache.canonical k);
  check_string "digest" "54d5f946fd36143a0d6531d1312b6577" (Cache.digest_hex k)

let test_cache_distinct_keys () =
  let base = Cache.digest_hex (some_key ()) in
  check "solver varies digest" true
    (base <> Cache.digest_hex (some_key ~solver:"other" ()));
  check "extra varies digest" true
    (base
    <> Cache.digest_hex
         (Cache.key ~extra:"x" ~family:"fam" ~params:"alpha=1, ell=2" ~seed:11
            ~solver:"s" ()))

let entry_paths () =
  (* Every *.entry file under the two-level cache tree. *)
  Sys.readdir tmp_dir |> Array.to_list
  |> List.concat_map (fun shard ->
         let d = Filename.concat tmp_dir shard in
         if Sys.is_directory d then
           Sys.readdir d |> Array.to_list
           |> List.filter_map (fun f ->
                  if Filename.check_suffix f ".entry" then
                    Some (Filename.concat d f)
                  else None)
         else [])

let test_cache_corruption_is_a_miss () =
  let c = fresh_cache () in
  let k = some_key () in
  Cache.store c k "precious result";
  (* Flip payload bytes in place: digest check must reject the entry. *)
  (match entry_paths () with
  | [ path ] ->
      let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
      seek_out oc (out_channel_length oc - 3);
      output_string oc "XXX";
      close_out oc
  | ps -> Alcotest.fail (Printf.sprintf "expected 1 entry, found %d" (List.length ps)));
  check "corrupt entry is a miss" true (Cache.find c k = None);
  check "errors counted" true ((Cache.stats c).Cache.errors > 0);
  (* memo recomputes and heals the entry. *)
  check_string "memo heals" "fresh" (Cache.memo c k (fun () -> "fresh"));
  check "healed" true (Cache.find c k = Some "fresh");
  Cache.clear c

let test_cache_truncation_is_a_miss () =
  let c = fresh_cache () in
  let k = some_key () in
  Cache.store c k (String.make 256 'z');
  (match entry_paths () with
  | [ path ] ->
      (* Chop the file mid-payload. *)
      let ic = open_in_bin path in
      let head = really_input_string ic 40 in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc head;
      close_out oc
  | _ -> Alcotest.fail "expected 1 entry");
  check "truncated entry is a miss" true (Cache.find c k = None);
  Cache.clear c

let test_cache_memo_value () =
  let c = fresh_cache () in
  let k = some_key () in
  let calls = ref 0 in
  let compute () = incr calls; 1234 in
  let encode = string_of_int and decode = int_of_string_opt in
  check_int "computed" 1234 (Cache.memo_value c k ~encode ~decode compute);
  check_int "cached" 1234 (Cache.memo_value c k ~encode ~decode compute);
  check_int "one compute" 1 !calls;
  (* A payload the decoder rejects counts as corrupt and recomputes. *)
  Cache.store c k "not-an-int";
  check_int "recomputed" 1234 (Cache.memo_value c k ~encode ~decode compute);
  check_int "two computes" 2 !calls;
  Cache.clear c

let test_cache_disabled () =
  let c = Cache.disabled () in
  check "disabled" true (not (Cache.enabled c));
  Cache.store c (some_key ()) "x";
  check "never hits" true (Cache.find c (some_key ()) = None);
  let s = Cache.stats c in
  check_int "no counters" 0 (s.Cache.hits + s.Cache.misses + s.Cache.stores)

let test_cache_parallel_memo () =
  (* Hammer one key from several domains: no crash, correct value. *)
  let c = fresh_cache () in
  let k = some_key () in
  let results =
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.map pool
          (fun i -> Cache.memo c k (fun () -> string_of_int (1000 + (i * 0))))
          (Array.init 32 Fun.id))
  in
  check "all agree" true (Array.for_all (fun r -> r = "1000") results);
  Cache.clear c;
  check "clear removes dir" true (not (Sys.file_exists tmp_dir))

let test_cache_shard_mkdir_race () =
  (* Two writers racing to create the same shard directory: the loser's
     mkdir hits EEXIST, which must be swallowed, and neither store may
     be lost. *)
  let dir = "exec_cache_race_test" in
  let c0 = Cache.create ~dir () in
  Cache.clear c0;
  (* Distinct keys sharing a shard (first two digest hex chars), so
     both writers contend on one mkdir. *)
  let key_for seed = Cache.key ~family:"race" ~params:"p" ~seed ~solver:"s" () in
  let k0 = key_for 0 in
  let shard k = String.sub (Cache.digest_hex k) 0 2 in
  let k1 =
    let rec find seed =
      let k = key_for seed in
      if shard k = shard k0 then k else find (seed + 1)
    in
    find 1
  in
  (* Each "process" gets its own cache handle on the shared directory;
     a spin barrier lines the two mkdir+store sequences up. *)
  let barrier = Atomic.make 0 in
  let store k v () =
    let c = Cache.create ~dir () in
    Atomic.incr barrier;
    while Atomic.get barrier < 2 do
      Domain.cpu_relax ()
    done;
    Cache.store c k v
  in
  let d0 = Domain.spawn (store k0 "left") in
  let d1 = Domain.spawn (store k1 "right") in
  Domain.join d0;
  Domain.join d1;
  check "no lost store (left)" true (Cache.find c0 k0 = Some "left");
  check "no lost store (right)" true (Cache.find c0 k1 = Some "right");
  (* The exact interleaving, forced: the directory appears between the
     existence check and the mkdir, so mkdir itself reports EEXIST.
     mkdir_p must swallow it and the directory must exist. *)
  let racing_fs =
    {
      Stdx.Fsio.real with
      Stdx.Fsio.mkdir =
        (fun path ->
          Stdx.Fsio.real.Stdx.Fsio.mkdir path;
          raise (Sys_error (path ^ ": File exists")));
    }
  in
  let lost = Filename.concat dir "zz" in
  Cache.mkdir_p ~fs:racing_fs lost;
  check "raced mkdir_p still creates" true (Sys.is_directory lost);
  Cache.clear c0

(* ------------------------------------------------------------------ *)
(* Parallel exact solver *)

let gadget_instances () =
  (* >= 20 seeded gadget instances across both families and sides. *)
  let insts = ref [] in
  List.iter
    (fun (t, ell) ->
      let p = Maxis_core.Params.make ~alpha:1 ~ell ~players:t in
      List.iter
        (fun seed ->
          List.iter
            (fun intersecting ->
              let rng = Prng.create seed in
              let x =
                Commcx.Inputs.gen_promise rng
                  ~k:(Maxis_core.Params.k p)
                  ~t ~intersecting
              in
              let inst = Maxis_core.Linear_family.instance p x in
              insts := inst.Maxis_core.Family.graph :: !insts)
            [ true; false ])
        [ 1; 2; 3 ])
    [ (2, 4); (3, 4); (2, 6); (4, 3) ];
  List.rev !insts

let test_solve_par_matches_solve_on_gadgets () =
  let graphs = gadget_instances () in
  check "enough instances" true (List.length graphs >= 20);
  Pool.with_pool ~jobs:3 (fun pool ->
      List.iteri
        (fun i g ->
          let seq = Mis.Exact.solve g in
          let par = Mis.Exact.solve_par ~pool g in
          check_int
            (Printf.sprintf "weight on instance %d" i)
            seq.Mis.Exact.weight par.Mis.Exact.weight;
          check
            (Printf.sprintf "witness valid on instance %d" i)
            true
            (Mis.Verify.solution_ok g ~claimed_weight:par.Mis.Exact.weight
               par.Mis.Exact.set))
        graphs)

let test_solve_par_matches_solve_on_random_graphs () =
  let rng = Prng.create 0xdead in
  Pool.with_pool ~jobs:4 (fun pool ->
      for i = 1 to 15 do
        let g = Build.erdos_renyi rng (10 + (i mod 20)) 0.3 in
        Build.random_weights rng g 7;
        let seq = Mis.Exact.solve g in
        let par = Mis.Exact.solve_par ~pool g in
        check_int (Printf.sprintf "random %d" i) seq.Mis.Exact.weight
          par.Mis.Exact.weight;
        check
          (Printf.sprintf "random witness %d" i)
          true
          (Mis.Verify.solution_ok g ~claimed_weight:par.Mis.Exact.weight
             par.Mis.Exact.set)
      done)

let test_solve_par_deterministic () =
  let rng = Prng.create 99 in
  let g = Build.erdos_renyi rng 30 0.25 in
  Build.random_weights rng g 5;
  let runs =
    List.map
      (fun () -> Pool.with_pool ~jobs:3 (fun pool -> Mis.Exact.solve_par ~pool g))
      [ (); (); () ]
  in
  match runs with
  | r0 :: rest ->
      List.iter
        (fun r ->
          check_int "weight stable" r0.Mis.Exact.weight r.Mis.Exact.weight;
          check "witness stable" true (Bitset.equal r0.Mis.Exact.set r.Mis.Exact.set);
          check_int "nodes stable" r0.Mis.Exact.nodes_explored
            r.Mis.Exact.nodes_explored)
        rest
  | [] -> assert false

let test_solve_par_width_one_is_solve () =
  let rng = Prng.create 7 in
  let g = Build.erdos_renyi rng 25 0.3 in
  Build.random_weights rng g 4;
  Pool.with_pool ~jobs:1 (fun pool ->
      let seq = Mis.Exact.solve g in
      let par = Mis.Exact.solve_par ~pool g in
      check_int "weight" seq.Mis.Exact.weight par.Mis.Exact.weight;
      check "same set" true (Bitset.equal seq.Mis.Exact.set par.Mis.Exact.set);
      check_int "same node count" seq.Mis.Exact.nodes_explored
        par.Mis.Exact.nodes_explored)

let test_solve_par_empty_and_tiny () =
  Pool.with_pool ~jobs:2 (fun pool ->
      check_int "empty graph" 0
        (Mis.Exact.solve_par ~pool (Wgraph.Graph.create 0)).Mis.Exact.weight;
      let g = Build.complete 3 in
      check_int "triangle" 1 (Mis.Exact.solve_par ~pool g).Mis.Exact.weight)

(* ------------------------------------------------------------------ *)
(* Budgets: bit-identity under no/unlimited budget, certified intervals
   on exhaustion, determinism, deadline/cancellation plumbing *)

module Budget = Exec.Budget

let test_budget_unlimited_bit_identity () =
  (* The acceptance bar: with budget = infinity — either the [unlimited]
     sentinel or a finite budget object with huge caps — the budgeted
     solver must reproduce today's solver bit for bit (weight, witness,
     node count) on every gadget instance, at every pool width. *)
  let graphs = gadget_instances () in
  check "24 gadget instances" true (List.length graphs >= 24);
  let huge = Budget.create ~max_nodes:(max_int / 2) () in
  List.iteri
    (fun i g ->
      let seq = Mis.Exact.solve g in
      let same label = function
        | Mis.Exact.Exhausted _ ->
            Alcotest.failf "instance %d: %s exhausted under no budget" i label
        | Mis.Exact.Complete s ->
            check_int (Printf.sprintf "%s weight %d" label i) seq.Mis.Exact.weight
              s.Mis.Exact.weight;
            check
              (Printf.sprintf "%s witness %d" label i)
              true
              (Bitset.equal seq.Mis.Exact.set s.Mis.Exact.set);
            check_int
              (Printf.sprintf "%s nodes %d" label i)
              seq.Mis.Exact.nodes_explored s.Mis.Exact.nodes_explored
      in
      same "default" (Mis.Exact.solve_budgeted g);
      same "huge-finite" (Mis.Exact.solve_budgeted ~budget:huge g))
    graphs;
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          List.iteri
            (fun i g ->
              let plain = Mis.Exact.solve_par ~pool g in
              match Mis.Exact.solve_par_budgeted ~pool ~budget:huge g with
              | Mis.Exact.Exhausted _ ->
                  Alcotest.failf "instance %d: par exhausted under huge budget" i
              | Mis.Exact.Complete s ->
                  check_int
                    (Printf.sprintf "par weight %d @%d" i jobs)
                    plain.Mis.Exact.weight s.Mis.Exact.weight;
                  check
                    (Printf.sprintf "par witness %d @%d" i jobs)
                    true
                    (Bitset.equal plain.Mis.Exact.set s.Mis.Exact.set);
                  check_int
                    (Printf.sprintf "par nodes %d @%d" i jobs)
                    plain.Mis.Exact.nodes_explored s.Mis.Exact.nodes_explored)
            graphs))
    widths

let test_budget_exhaustion_certified_interval () =
  (* A starved solve must degrade to a certified interval on every gadget
     instance: lb from a valid incumbent independent set, ub from a root
     relaxation, with the true OPT inside. *)
  let graphs = gadget_instances () in
  check "24 gadget instances" true (List.length graphs >= 24);
  let tiny = Budget.create ~max_nodes:8 () in
  List.iteri
    (fun i g ->
      let opt = Mis.Exact.opt g in
      match Mis.Exact.solve_budgeted ~budget:tiny g with
      | Mis.Exact.Complete _ ->
          Alcotest.failf "instance %d solved within 8 nodes?" i
      | Mis.Exact.Exhausted e ->
          check (Printf.sprintf "reason %d" i) true (e.Mis.Exact.reason = Budget.Nodes);
          check
            (Printf.sprintf "lb <= OPT <= ub on %d" i)
            true
            (e.Mis.Exact.lb <= opt && opt <= e.Mis.Exact.ub);
          check
            (Printf.sprintf "witness certifies lb on %d" i)
            true
            (Mis.Verify.solution_ok g ~claimed_weight:e.Mis.Exact.lb
               e.Mis.Exact.witness);
          check
            (Printf.sprintf "spend within cap on %d" i)
            true
            (e.Mis.Exact.nodes_explored <= 9))
    graphs

let test_budget_par_interval_deterministic () =
  (* Pure node budgets stay deterministic under parallel fan-out: per
     subproblem tallies, no scheduling leak.  Same width => same interval,
     witness and node count; and the interval still brackets OPT. *)
  let rng = Prng.create 0xb00 in
  let g = Build.erdos_renyi rng 34 0.25 in
  Build.random_weights rng g 5;
  let opt = Mis.Exact.opt g in
  let budget = Budget.create ~max_nodes:120 () in
  let once () =
    Pool.with_pool ~jobs:3 (fun pool ->
        Mis.Exact.solve_par_budgeted ~pool ~budget g)
  in
  match (once (), once ()) with
  | Mis.Exact.Exhausted a, Mis.Exact.Exhausted b ->
      check_int "lb stable" a.Mis.Exact.lb b.Mis.Exact.lb;
      check_int "ub stable" a.Mis.Exact.ub b.Mis.Exact.ub;
      check_int "nodes stable" a.Mis.Exact.nodes_explored b.Mis.Exact.nodes_explored;
      check "witness stable" true
        (Bitset.equal a.Mis.Exact.witness b.Mis.Exact.witness);
      check "interval brackets OPT" true
        (a.Mis.Exact.lb <= opt && opt <= a.Mis.Exact.ub);
      check "witness valid" true
        (Mis.Verify.solution_ok g ~claimed_weight:a.Mis.Exact.lb
           a.Mis.Exact.witness)
  | _ ->
      (* 34 nodes at 0.25 density needs far more than 120 B&B nodes. *)
      Alcotest.fail "expected exhaustion on both runs"

let test_budget_deadline_and_cancel () =
  (* Deadline via an injected fake clock; the trip cancels the shared
     token so split siblings stop too. *)
  let now = ref 0.0 in
  let b = Budget.create ~deadline_s:5.0 ~clock:(fun () -> !now) ~every:1 () in
  check "within deadline" true (Budget.check b ~nodes:1 = None);
  now := 6.0;
  check "deadline trips" true (Budget.check b ~nodes:2 = Some Budget.Deadline);
  check "trip cancels token" true (Budget.cancelled b);
  check "siblings see cancellation" true
    (Budget.check b ~nodes:3 = Some Budget.Cancelled);
  (* An explicitly cancelled budget stops a fresh solve promptly. *)
  let c = Budget.create ~max_nodes:1_000_000 ~every:1 () in
  Budget.cancel c;
  let g = Build.complete 6 in
  (match Mis.Exact.solve_budgeted ~budget:c g with
  | Mis.Exact.Exhausted e ->
      check "reason cancelled" true (e.Mis.Exact.reason = Budget.Cancelled);
      check "interval well-formed" true (e.Mis.Exact.lb <= e.Mis.Exact.ub)
  | Mis.Exact.Complete _ -> Alcotest.fail "cancelled budget completed")

let test_budget_split_and_fingerprint () =
  let b = Budget.create ~max_nodes:10 () in
  Alcotest.(check (option int))
    "ceiling share" (Some 4)
    (Budget.node_limit (Budget.split b ~pieces:3));
  check "split unlimited is unlimited" true
    (Budget.is_unlimited (Budget.split Budget.unlimited ~pieces:7));
  let sub = Budget.split b ~pieces:2 in
  Budget.cancel sub;
  check "token shared with parent" true (Budget.cancelled b);
  check_string "unlimited fingerprint" "" (Budget.fingerprint Budget.unlimited);
  check "finite fingerprints distinct" true
    (Budget.fingerprint (Budget.create ~max_nodes:5 ())
    <> Budget.fingerprint (Budget.create ~max_nodes:6 ()));
  check "deadline marks fingerprint" true
    (Budget.fingerprint (Budget.create ~max_nodes:5 ())
    <> Budget.fingerprint (Budget.create ~max_nodes:5 ~deadline_s:1.0 ()))

(* ------------------------------------------------------------------ *)
(* Journal: crash-safe completion records *)

module Journal = Exec.Journal

let jdir = "exec_journal_test"

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let jkey i =
  Cache.key ~family:"journal-test" ~params:"p" ~seed:i ~solver:"s" ()

let test_journal_round_trip () =
  rm_rf jdir;
  let j = Journal.open_ ~dir:jdir ~run_id:"t1" () in
  check "enabled" true (Journal.enabled j);
  check "cold" true (not (Journal.completed j (jkey 0)));
  Journal.record j (jkey 0);
  Journal.record j (jkey 1);
  Journal.record j (jkey 0) (* dedup *);
  check "completed" true (Journal.completed j (jkey 0));
  check_int "appended" 2 (Journal.appended_count j);
  check_int "resumed" 0 (Journal.resumed_count j);
  Journal.close j;
  (* Resume: both cells load back. *)
  let j2 = Journal.open_ ~dir:jdir ~run_id:"t1" () in
  check_int "resumed cells" 2 (Journal.resumed_count j2);
  check "cell 1 completed" true (Journal.completed j2 (jkey 1));
  Journal.close j2;
  (* resume:false restarts from scratch. *)
  let j3 = Journal.open_ ~dir:jdir ~resume:false ~run_id:"t1" () in
  check_int "truncated" 0 (Journal.resumed_count j3);
  check "cell gone" true (not (Journal.completed j3 (jkey 0)));
  Journal.close j3;
  rm_rf jdir

let test_journal_torn_tail_tolerated () =
  rm_rf jdir;
  let j = Journal.open_ ~dir:jdir ~run_id:"torn" () in
  Journal.record j (jkey 0);
  Journal.record j (jkey 1);
  Journal.close j;
  (* Simulate a crash mid-append: a half-written line with no digest. *)
  let path = Filename.concat jdir "torn.journal" in
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
  output_string oc "0123456789abcdef torn-mid-wri";
  close_out oc;
  let j2 = Journal.open_ ~dir:jdir ~run_id:"torn" () in
  check_int "good prefix trusted" 2 (Journal.resumed_count j2);
  check "cells intact" true
    (Journal.completed j2 (jkey 0) && Journal.completed j2 (jkey 1));
  (* The journal stays appendable after the tear. *)
  Journal.record j2 (jkey 2);
  check_int "appended after tear" 1 (Journal.appended_count j2);
  Journal.close j2;
  rm_rf jdir

let test_journal_memo_skips_resolves () =
  rm_rf jdir;
  let cache = fresh_cache () in
  let calls = ref 0 in
  let compute () =
    incr calls;
    "payload"
  in
  let j = Journal.open_ ~dir:jdir ~run_id:"memo" () in
  check_string "computed" "payload" (Journal.memo j cache (jkey 9) compute);
  check_string "cache answers" "payload" (Journal.memo j cache (jkey 9) compute);
  check_int "one compute" 1 !calls;
  check_int "skipped counts journaled hits" 1 (Journal.skipped_count j);
  Journal.close j;
  (* A resumed run re-materializes from the cache: zero re-solves. *)
  let j2 = Journal.open_ ~dir:jdir ~run_id:"memo" () in
  check_string "resumed" "payload" (Journal.memo j2 cache (jkey 9) compute);
  check_int "still one compute" 1 !calls;
  check_int "skipped on resume" 1 (Journal.skipped_count j2);
  Journal.close j2;
  (* Cache evicted meanwhile: the journaled cell merely recomputes. *)
  Cache.clear cache;
  let cache2 = fresh_cache () in
  let j3 = Journal.open_ ~dir:jdir ~run_id:"memo" () in
  check_string "recomputes" "payload" (Journal.memo j3 cache2 (jkey 9) compute);
  check_int "second compute" 2 !calls;
  Journal.close j3;
  Cache.clear cache2;
  rm_rf jdir

let test_journal_rejections () =
  rm_rf jdir;
  (try
     ignore (Journal.open_ ~dir:jdir ~run_id:"bad/id" ());
     Alcotest.fail "slash in run_id accepted"
   with Invalid_argument _ -> ());
  (* A file that is not a journal must raise Journal_io, not be eaten. *)
  Cache.mkdir_p jdir;
  let path = Filename.concat jdir "fake.journal" in
  let oc = open_out path in
  output_string oc "not a journal at all\n";
  close_out oc;
  (try
     ignore (Journal.open_ ~dir:jdir ~run_id:"fake" ());
     Alcotest.fail "bad header accepted"
   with Exec.Error.Error (Exec.Error.Journal_io _) -> ());
  rm_rf jdir

let test_journal_disabled () =
  let j = Journal.disabled () in
  check "disabled" true (not (Journal.enabled j));
  Journal.record j (jkey 0);
  check "records nothing" true (not (Journal.completed j (jkey 0)));
  let calls = ref 0 in
  let c = Cache.disabled () in
  ignore (Journal.memo j c (jkey 0) (fun () -> incr calls; "x"));
  ignore (Journal.memo j c (jkey 0) (fun () -> incr calls; "x"));
  check_int "computes each time (no cache, no journal)" 2 !calls;
  check_int "exit code SIGTERM" 143 (Journal.signal_exit_code Sys.sigterm);
  check_int "exit code SIGINT" 130 (Journal.signal_exit_code Sys.sigint)

(* ------------------------------------------------------------------ *)
(* Error taxonomy + bounded retry *)

let test_retry_transient_then_success () =
  let sleeps = ref [] in
  let tries = ref 0 in
  let v =
    Exec.Error.with_retries
      ~sleep:(fun d -> sleeps := d :: !sleeps)
      ~label:"test" (fun () ->
        incr tries;
        if !tries < 3 then raise (Sys_error "flaky") else 42)
  in
  check_int "value" 42 v;
  check_int "three tries" 3 !tries;
  (match List.rev !sleeps with
  | [ a; b ] -> check "exponential backoff" true (b = 2.0 *. a)
  | l -> Alcotest.failf "expected 2 sleeps, got %d" (List.length l))

let test_retry_nontransient_escapes_immediately () =
  let tries = ref 0 in
  (try
     ignore
       (Exec.Error.with_retries ~sleep:ignore ~label:"test" (fun () ->
            incr tries;
            invalid_arg "logic error"));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  check_int "no retry on logic errors" 1 !tries

let test_retry_exhaustion_reraises_last () =
  let tries = ref 0 in
  (try
     ignore
       (Exec.Error.with_retries ~attempts:4 ~sleep:ignore ~label:"test"
          (fun () ->
            incr tries;
            raise (Exec.Error.Error (Exec.Error.Cache_io "disk on fire"))));
     Alcotest.fail "expected Error"
   with Exec.Error.Error (Exec.Error.Cache_io m) ->
     check_string "original message" "disk on fire" m);
  check_int "all attempts consumed" 4 !tries;
  check "classification" true
    (Exec.Error.transient (Exec.Error.Error (Exec.Error.Worker_death "x"))
    && Exec.Error.transient End_of_file
    && not (Exec.Error.transient Exit))

let test_net_io_transient () =
  (* Net_io is in the transient class, so socket hiccups flow through
     the same bounded-retry policy as cache/journal I/O. *)
  let e = Exec.Error.Error (Exec.Error.Net_io "ECONNREFUSED") in
  check "transient" true (Exec.Error.transient e);
  check "message" true
    (Exec.Error.to_string (Exec.Error.Net_io "x") = "network I/O: x");
  let tries = ref 0 in
  let v =
    Exec.Error.with_retries ~sleep:ignore ~label:"net-test" (fun () ->
        incr tries;
        if !tries < 2 then raise e else "connected")
  in
  check_string "retried to success" "connected" v

(* ------------------------------------------------------------------ *)
(* Cache under concurrent readers/writers + injected filesystem faults *)

let test_cache_concurrent_faulty_same_key () =
  (* Many domains hammering one key through a fault-injecting
     filesystem: torn writes, bit flips, failed renames and ENOSPC must
     surface as misses (recompute) — never as wrong bytes, an
     exception, or a hang. *)
  let dir = "exec_cache_faulty_conc_test" in
  let injector =
    Exec.Fsio.injector
      (Exec.Fsio.plan
         ~default:
           (Exec.Fsio.op_fault ~eintr:0.08 ~enospc:0.06 ~torn:0.06 ~flip:0.05
              ~fail_rename:0.06 ())
         23)
  in
  let c = Cache.create ~fs:(Exec.Fsio.chaos injector) ~dir () in
  let k = some_key () in
  let results =
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.map pool
          (fun _ -> Cache.memo c k (fun () -> "payload-42"))
          (Array.init 64 Fun.id))
  in
  check "one key, right bytes under faults" true
    (Array.for_all (fun r -> r = "payload-42") results);
  (* Interleaved writers on a small key set: every memo returns its own
     key's payload, concurrent stores to the same entry included. *)
  let key_of i =
    Cache.key ~family:"conc" ~params:(string_of_int (i mod 8)) ~seed:0
      ~solver:"s" ()
  in
  let results2 =
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.map pool
          (fun i -> Cache.memo c (key_of i) (fun () -> "v" ^ string_of_int (i mod 8)))
          (Array.init 64 Fun.id))
  in
  Array.iteri
    (fun i r ->
      if r <> "v" ^ string_of_int (i mod 8) then
        Alcotest.failf "wrong payload %S for slot %d" r i)
    results2;
  (* Whatever the faults left on disk, a clean handle still serves the
     same bytes (corrupt survivors are misses and recompute). *)
  let clean = Cache.create ~dir () in
  check_string "clean handle agrees" "payload-42"
    (Cache.memo clean k (fun () -> "payload-42"));
  check "faults were actually injected" true
    (Exec.Fsio.total_injected injector > 0);
  Cache.clear clean

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick
            test_pool_map_matches_sequential;
          Alcotest.test_case "order under skew" `Quick
            test_pool_map_order_under_skew;
          Alcotest.test_case "empty and singleton" `Quick
            test_pool_map_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "nested map rejected" `Quick
            test_pool_nested_map_rejected;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          Alcotest.test_case "jobs=1 is a loop" `Quick
            test_pool_jobs_one_spawns_nothing;
          Alcotest.test_case "bad width rejected" `Quick
            test_pool_create_rejects_bad_width;
          Alcotest.test_case "MAXIS_JOBS parsing" `Quick
            test_pool_default_jobs_env;
          Alcotest.test_case "run_range matches a loop" `Quick
            test_run_range_matches_loop;
          Alcotest.test_case "run_range chunks cover the range" `Quick
            test_run_range_chunks_cover_range;
          Alcotest.test_case "run_range rejects hi < lo" `Quick
            test_run_range_rejects_reverse_range;
          Alcotest.test_case "run_range lowest-chunk exception" `Quick
            test_run_range_exception_lowest_chunk;
          Alcotest.test_case "run_range rapid back-to-back reuse" `Quick
            test_run_range_rapid_reuse;
          Alcotest.test_case "run_range nested batch rejected" `Quick
            test_run_range_nested_rejected;
          Alcotest.test_case "run_range after shutdown" `Quick
            test_run_range_after_shutdown;
        ] );
      ( "cache",
        [
          Alcotest.test_case "round trip" `Quick test_cache_round_trip;
          Alcotest.test_case "digest stability" `Quick
            test_cache_key_digest_stable;
          Alcotest.test_case "distinct keys" `Quick test_cache_distinct_keys;
          Alcotest.test_case "corruption is a miss" `Quick
            test_cache_corruption_is_a_miss;
          Alcotest.test_case "truncation is a miss" `Quick
            test_cache_truncation_is_a_miss;
          Alcotest.test_case "memo_value" `Quick test_cache_memo_value;
          Alcotest.test_case "disabled cache" `Quick test_cache_disabled;
          Alcotest.test_case "parallel memo" `Quick test_cache_parallel_memo;
          Alcotest.test_case "shard mkdir race" `Quick
            test_cache_shard_mkdir_race;
          Alcotest.test_case "concurrent memo under fs faults" `Quick
            test_cache_concurrent_faulty_same_key;
        ] );
      ( "solve_par",
        [
          Alcotest.test_case "gadget instances" `Quick
            test_solve_par_matches_solve_on_gadgets;
          Alcotest.test_case "random graphs" `Quick
            test_solve_par_matches_solve_on_random_graphs;
          Alcotest.test_case "deterministic" `Quick test_solve_par_deterministic;
          Alcotest.test_case "width 1 is solve" `Quick
            test_solve_par_width_one_is_solve;
          Alcotest.test_case "degenerate graphs" `Quick
            test_solve_par_empty_and_tiny;
        ] );
      ( "budget",
        [
          Alcotest.test_case "unlimited bit-identity" `Quick
            test_budget_unlimited_bit_identity;
          Alcotest.test_case "certified interval on exhaustion" `Quick
            test_budget_exhaustion_certified_interval;
          Alcotest.test_case "parallel interval deterministic" `Quick
            test_budget_par_interval_deterministic;
          Alcotest.test_case "deadline and cancel" `Quick
            test_budget_deadline_and_cancel;
          Alcotest.test_case "split and fingerprint" `Quick
            test_budget_split_and_fingerprint;
        ] );
      ( "journal",
        [
          Alcotest.test_case "round trip and resume" `Quick
            test_journal_round_trip;
          Alcotest.test_case "torn tail tolerated" `Quick
            test_journal_torn_tail_tolerated;
          Alcotest.test_case "memo skips re-solves" `Quick
            test_journal_memo_skips_resolves;
          Alcotest.test_case "rejections" `Quick test_journal_rejections;
          Alcotest.test_case "disabled journal" `Quick test_journal_disabled;
        ] );
      ( "retries",
        [
          Alcotest.test_case "transient then success" `Quick
            test_retry_transient_then_success;
          Alcotest.test_case "non-transient escapes" `Quick
            test_retry_nontransient_escapes_immediately;
          Alcotest.test_case "exhaustion reraises" `Quick
            test_retry_exhaustion_reraises_last;
          Alcotest.test_case "Net_io is transient" `Quick test_net_io_transient;
        ] );
    ]
