(* Machine checks of Properties 1-3 (Section 4.1) and Claims 1-7 /
   Corollary 2 — the paper's case analyses run as code. *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module Properties = Maxis_core.Properties
module Claims = Maxis_core.Claims
module Inputs = Commcx.Inputs
module Bitset = Stdx.Bitset
module Prng = Stdx.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let p2 = P.make ~alpha:1 ~ell:4 ~players:2
let p3 = P.make ~alpha:1 ~ell:4 ~players:3
let p4 = P.make ~alpha:1 ~ell:5 ~players:4

let assert_holds (r : Properties.result) =
  if not r.Properties.holds then
    Alcotest.failf "%s: measured=%d bound=%d (%s)" r.Properties.name
      r.Properties.measured r.Properties.bound r.Properties.detail

let assert_claim (c : Claims.check) =
  if not c.Claims.holds then
    Alcotest.failf "%s: opt=%d bound=%d" c.Claims.name c.Claims.opt c.Claims.bound

(* ------------------------------------------------------------------ *)
(* Property 1 *)

let test_property1_all_m_all_t () =
  List.iter
    (fun p ->
      List.iter assert_holds (Properties.check_all_property1 p))
    [ p2; p3; p4; P.figure_params ~players:2; P.figure_params ~players:3 ]

let test_property1_alpha2 () =
  let p = P.make ~alpha:2 ~ell:3 ~players:2 in
  List.iter assert_holds (Properties.check_all_property1 p)

(* ------------------------------------------------------------------ *)
(* Property 2 *)

let test_property2_exhaustive_small () =
  (* All (i, j, m1, m2) for the 2-player figure-adjacent params. *)
  let p = p2 in
  let k = P.k p in
  for m1 = 0 to k - 1 do
    for m2 = 0 to k - 1 do
      if m1 <> m2 then begin
        assert_holds (Properties.property2 p ~i:0 ~j:1 ~m1 ~m2);
        assert_holds (Properties.property2 p ~i:1 ~j:0 ~m1 ~m2)
      end
    done
  done

let test_property2_sampled_larger () =
  let rng = Prng.create 5 in
  List.iter assert_holds (Properties.check_sampled_property2 rng p4 ~samples:40)

let test_property2_requires_distinct () =
  Alcotest.check_raises "i = j" (Invalid_argument "Properties.property2: need i <> j")
    (fun () -> ignore (Properties.property2 p2 ~i:0 ~j:0 ~m1:0 ~m2:1));
  Alcotest.check_raises "m1 = m2" (Invalid_argument "Properties.property2: need m1 <> m2")
    (fun () -> ignore (Properties.property2 p2 ~i:0 ~j:1 ~m1:1 ~m2:1))

(* ------------------------------------------------------------------ *)
(* Property 3 *)

let test_property3_on_exact_solutions () =
  (* Run the exact solver on promise instances and check Property 3 on the
     optimal independent set it returns, for every (i, j, m1, m2). *)
  let p = p3 in
  let rng = Prng.create 9 in
  for trial = 0 to 3 do
    let x =
      Inputs.gen_promise rng ~k:(P.k p) ~t:3 ~intersecting:(trial mod 2 = 0)
    in
    let inst = LF.instance p x in
    let sol = Mis.Exact.solve inst.Maxis_core.Family.graph in
    let k = P.k p in
    for i = 0 to 2 do
      for j = 0 to 2 do
        if i <> j then
          for m1 = 0 to k - 1 do
            for m2 = 0 to k - 1 do
              if m1 <> m2 then
                assert_holds
                  (Properties.property3 p ~i ~j ~m1 ~m2 ~set:sol.Mis.Exact.set)
            done
          done
      done
    done
  done

let test_property3_on_greedy_sets () =
  (* Also check on greedy (maximal but suboptimal) independent sets. *)
  let p = p2 in
  let rng = Prng.create 11 in
  let x = Inputs.gen_promise rng ~k:(P.k p) ~t:2 ~intersecting:false in
  let inst = LF.instance p x in
  let g = inst.Maxis_core.Family.graph in
  List.iter
    (fun h ->
      let _, s = Mis.Greedy.run h g in
      for m1 = 0 to P.k p - 1 do
        for m2 = 0 to P.k p - 1 do
          if m1 <> m2 then
            assert_holds (Properties.property3 p ~i:0 ~j:1 ~m1 ~m2 ~set:s)
        done
      done)
    Mis.Greedy.all

(* ------------------------------------------------------------------ *)
(* Claims 1 and 2 (t = 2 warm-up, Lemma 1) *)

let singleton_inputs p a b =
  Inputs.of_bit_lists ~k:(P.k p) [ [ a ]; [ b ] ]

let test_claim1_exhaustive_singletons () =
  let p = p2 in
  for m = 0 to P.k p - 1 do
    assert_claim (Claims.claim1 p (singleton_inputs p m m))
  done

let test_claim2_exhaustive_singletons () =
  let p = p2 in
  for a = 0 to P.k p - 1 do
    for b = 0 to P.k p - 1 do
      if a <> b then assert_claim (Claims.claim2 p (singleton_inputs p a b))
    done
  done

let test_claim1_requires_intersection () =
  Alcotest.check_raises "disjoint input"
    (Invalid_argument "Claims.claim1: strings must intersect") (fun () ->
      ignore (Claims.claim1 p2 (singleton_inputs p2 0 1)))

let test_claim2_requires_disjoint () =
  Alcotest.check_raises "intersecting input"
    (Invalid_argument "Claims.claim2: strings must be disjoint") (fun () ->
      ignore (Claims.claim2 p2 (singleton_inputs p2 1 1)))

let test_claims12_dense_inputs () =
  (* Denser strings still satisfy the claims. *)
  let p = p2 in
  let rng = Prng.create 17 in
  for _ = 1 to 6 do
    let xi = Inputs.gen_uniquely_intersecting rng ~k:(P.k p) ~t:2 ~ones_per_player:2 in
    assert_claim (Claims.claim1 p xi);
    let xd = Inputs.gen_pairwise_disjoint rng ~k:(P.k p) ~t:2 ~ones_per_player:2 in
    assert_claim (Claims.claim2 p xd)
  done

(* ------------------------------------------------------------------ *)
(* Claims 3 and 5 (general t, Lemma 2) *)

let test_claim3_across_t () =
  List.iter
    (fun p ->
      let k = P.k p in
      let t = p.P.players in
      let m = k / 2 in
      let x = Inputs.of_bit_lists ~k (List.init t (fun _ -> [ m ])) in
      assert_claim (Claims.claim3 p x))
    [ p2; p3; p4 ]

let test_claim5_across_t () =
  let rng = Prng.create 23 in
  List.iter
    (fun p ->
      for _ = 1 to 4 do
        let x =
          Inputs.gen_pairwise_disjoint rng ~k:(P.k p) ~t:p.P.players
            ~ones_per_player:1
        in
        assert_claim (Claims.claim5 p x)
      done)
    [ p2; p3; p4 ]

let test_claim3_claim5_validation () =
  Alcotest.check_raises "claim3 needs common"
    (Invalid_argument "Claims.claim3: strings must share an index") (fun () ->
      ignore (Claims.claim3 p3 (Inputs.of_bit_lists ~k:(P.k p3) [ [ 0 ]; [ 1 ]; [ 2 ] ])));
  Alcotest.check_raises "claim5 needs disjoint"
    (Invalid_argument "Claims.claim5: strings must be pairwise disjoint")
    (fun () ->
      ignore (Claims.claim5 p3 (Inputs.of_bit_lists ~k:(P.k p3) [ [ 0 ]; [ 0 ]; [ 2 ] ])))

(* ------------------------------------------------------------------ *)
(* Corollary 2 *)

let test_claim4_various_tuples () =
  let p = p3 in
  List.iter
    (fun ms ->
      let c = Claims.claim4 p ~ms in
      assert_claim c;
      (* Claim 4 counts nodes: the measured quantity is also at least the
         positions count minus the pairwise matchings, i.e. positive. *)
      Alcotest.(check bool) "positive" true (c.Claims.opt > 0))
    [ [| 0; 1; 2 |]; [| 4; 2; 0 |]; [| 2; 3; 4 |] ];
  Alcotest.check_raises "distinct required"
    (Invalid_argument "Claims.claim4: indices must be distinct") (fun () ->
      ignore (Claims.claim4 p ~ms:[| 1; 1; 2 |]))

let test_claim4_relates_to_corollary2 () =
  (* Corollary 2 = t heavy nodes + Claim 4's code count: the measured
     values must satisfy corollary2.opt = t*ell + claim4.opt exactly
     (forcing the heavy nodes costs nothing extra). *)
  let p = p3 in
  let ms = [| 0; 2; 4 |] in
  let c4 = Claims.claim4 p ~ms in
  let c2 = Claims.corollary2 p ~ms in
  Alcotest.(check int) "decomposition"
    ((p.P.players * P.ell p) + c4.Claims.opt)
    c2.Claims.opt

let test_corollary2_various_tuples () =
  let p = p3 in
  List.iter
    (fun ms -> assert_claim (Claims.corollary2 p ~ms))
    [ [| 0; 1; 2 |]; [| 4; 2; 0 |]; [| 1; 3; 4 |] ];
  Alcotest.check_raises "distinct required"
    (Invalid_argument "Claims.corollary2: indices must be distinct") (fun () ->
      ignore (Claims.corollary2 p ~ms:[| 0; 0; 1 |]));
  Alcotest.check_raises "arity"
    (Invalid_argument "Claims.corollary2: need t indices") (fun () ->
      ignore (Claims.corollary2 p ~ms:[| 0; 1 |]))

(* ------------------------------------------------------------------ *)
(* Claims 6 and 7 (quadratic) *)

let qp = P.make ~alpha:1 ~ell:3 ~players:2

let test_claim6_direct () =
  let sl = Maxis_core.Quadratic_family.string_length qp in
  let common = Maxis_core.Quadratic_family.pair_index qp ~m1:1 ~m2:2 in
  let x = Inputs.of_bit_lists ~k:sl [ [ common ]; [ common ] ] in
  assert_claim (Claims.claim6 qp x)

let test_claim7_direct () =
  let rng = Prng.create 31 in
  for _ = 1 to 4 do
    let x =
      Inputs.gen_pairwise_disjoint rng
        ~k:(Maxis_core.Quadratic_family.string_length qp)
        ~t:2 ~ones_per_player:3
    in
    assert_claim (Claims.claim7 qp x)
  done

let test_claim67_validation () =
  let sl = Maxis_core.Quadratic_family.string_length qp in
  Alcotest.check_raises "claim6 needs common"
    (Invalid_argument "Claims.claim6: strings must share an index") (fun () ->
      ignore (Claims.claim6 qp (Inputs.of_bit_lists ~k:sl [ [ 0 ]; [ 1 ] ])));
  Alcotest.check_raises "claim7 needs disjoint"
    (Invalid_argument "Claims.claim7: strings must be pairwise disjoint")
    (fun () -> ignore (Claims.claim7 qp (Inputs.of_bit_lists ~k:sl [ [ 0 ]; [ 0 ] ])))

(* ------------------------------------------------------------------ *)
(* qcheck: random promise vectors never violate any claim *)

let prop_linear_claims_random =
  QCheck.Test.make ~name:"claims 3/5 on random promise inputs" ~count:20
    QCheck.(triple small_int small_int bool) (fun (seed, tt, inter) ->
      let p = if tt mod 2 = 0 then p2 else p3 in
      let rng = Prng.create seed in
      let x =
        Inputs.gen_promise rng ~k:(P.k p) ~t:p.P.players ~intersecting:inter
      in
      let c = if inter then Claims.claim3 p x else Claims.claim5 p x in
      c.Claims.holds)

let prop_quadratic_claims_random =
  QCheck.Test.make ~name:"claims 6/7 on random promise inputs" ~count:10
    QCheck.(pair small_int bool) (fun (seed, inter) ->
      let rng = Prng.create seed in
      let x =
        Inputs.gen_promise rng
          ~k:(Maxis_core.Quadratic_family.string_length qp)
          ~t:2 ~intersecting:inter
      in
      let c = if inter then Claims.claim6 qp x else Claims.claim7 qp x in
      c.Claims.holds)

let prop_corollary2_random_tuples =
  QCheck.Test.make ~name:"corollary 2 on random index tuples" ~count:15
    QCheck.small_int (fun seed ->
      let p = p3 in
      let rng = Prng.create seed in
      let ms =
        Array.of_list (Prng.sample_without_replacement rng (P.k p) p.P.players)
      in
      (Claims.corollary2 p ~ms).Claims.holds)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "properties-claims"
    [
      ( "property-1",
        [
          Alcotest.test_case "all m, several t" `Quick test_property1_all_m_all_t;
          Alcotest.test_case "alpha = 2" `Quick test_property1_alpha2;
        ] );
      ( "property-2",
        [
          Alcotest.test_case "exhaustive small" `Quick test_property2_exhaustive_small;
          Alcotest.test_case "sampled larger" `Quick test_property2_sampled_larger;
          Alcotest.test_case "distinctness required" `Quick test_property2_requires_distinct;
        ] );
      ( "property-3",
        [
          Alcotest.test_case "exact solutions" `Slow test_property3_on_exact_solutions;
          Alcotest.test_case "greedy sets" `Quick test_property3_on_greedy_sets;
        ] );
      ( "claims-1-2",
        [
          Alcotest.test_case "claim 1 exhaustive" `Quick test_claim1_exhaustive_singletons;
          Alcotest.test_case "claim 2 exhaustive" `Slow test_claim2_exhaustive_singletons;
          Alcotest.test_case "claim 1 validation" `Quick test_claim1_requires_intersection;
          Alcotest.test_case "claim 2 validation" `Quick test_claim2_requires_disjoint;
          Alcotest.test_case "dense inputs" `Quick test_claims12_dense_inputs;
        ] );
      ( "claims-3-5",
        [
          Alcotest.test_case "claim 3 across t" `Quick test_claim3_across_t;
          Alcotest.test_case "claim 5 across t" `Quick test_claim5_across_t;
          Alcotest.test_case "validation" `Quick test_claim3_claim5_validation;
        ] );
      ( "claim-4",
        [
          Alcotest.test_case "various tuples" `Quick test_claim4_various_tuples;
          Alcotest.test_case "relates to corollary 2" `Quick
            test_claim4_relates_to_corollary2;
        ] );
      ( "corollary-2",
        [ Alcotest.test_case "various tuples" `Quick test_corollary2_various_tuples ] );
      ( "claims-6-7",
        [
          Alcotest.test_case "claim 6" `Quick test_claim6_direct;
          Alcotest.test_case "claim 7" `Quick test_claim7_direct;
          Alcotest.test_case "validation" `Quick test_claim67_validation;
        ] );
      qsuite "claims-props"
        [
          prop_linear_claims_random;
          prop_quadratic_claims_random;
          prop_corollary2_random_tuples;
        ];
    ]
