(* Tests for the stdx utility substrate: bitsets, PRNG, primes, math
   helpers, statistics, tables, dynamic vectors. *)

module Bitset = Stdx.Bitset
module Prng = Stdx.Prng
module Mathx = Stdx.Mathx

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_empty () =
  let s = Bitset.create 100 in
  check_int "cardinal" 0 (Bitset.cardinal s);
  check "is_empty" true (Bitset.is_empty s);
  check "mem" false (Bitset.mem s 0);
  check "mem hi" false (Bitset.mem s 99)

let test_bitset_add_remove () =
  let s = Bitset.create 100 in
  Bitset.add s 0;
  Bitset.add s 61;
  Bitset.add s 62;
  Bitset.add s 99;
  check_int "cardinal" 4 (Bitset.cardinal s);
  check "mem 61" true (Bitset.mem s 61);
  check "mem 62" true (Bitset.mem s 62);
  Bitset.remove s 62;
  check "removed" false (Bitset.mem s 62);
  check_int "cardinal after remove" 3 (Bitset.cardinal s);
  Bitset.remove s 62;
  check_int "remove idempotent" 3 (Bitset.cardinal s)

let test_bitset_full () =
  let s = Bitset.full 125 in
  check_int "cardinal" 125 (Bitset.cardinal s);
  check "all members" true (Bitset.for_all (fun _ -> true) s);
  check_int "elements length" 125 (List.length (Bitset.elements s));
  let t = Bitset.full 0 in
  check_int "full 0" 0 (Bitset.cardinal t)

let test_bitset_range_errors () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "mem -1" (Invalid_argument "Bitset: index -1 out of range [0, 10)")
    (fun () -> ignore (Bitset.mem s (-1)));
  Alcotest.check_raises "add 10" (Invalid_argument "Bitset: index 10 out of range [0, 10)")
    (fun () -> Bitset.add s 10)

let test_bitset_algebra () =
  let a = Bitset.of_list 100 [ 1; 2; 3; 70 ] in
  let b = Bitset.of_list 100 [ 3; 4; 70; 99 ] in
  check_int "union" 6 (Bitset.cardinal (Bitset.union a b));
  check_int "inter" 2 (Bitset.cardinal (Bitset.inter a b));
  check_int "diff" 2 (Bitset.cardinal (Bitset.diff a b));
  check_int "inter_cardinal" 2 (Bitset.inter_cardinal a b);
  check "subset no" false (Bitset.subset a b);
  check "subset yes" true (Bitset.subset (Bitset.inter a b) a);
  check "disjoint no" false (Bitset.disjoint a b);
  check "disjoint yes" true (Bitset.disjoint a (Bitset.of_list 100 [ 50 ]));
  let c = Bitset.complement a in
  check_int "complement" 96 (Bitset.cardinal c);
  check "complement disjoint" true (Bitset.disjoint a c)

let test_bitset_in_place () =
  let a = Bitset.of_list 70 [ 1; 2; 65 ] in
  let b = Bitset.of_list 70 [ 2; 3 ] in
  Bitset.union_in_place a b;
  check_int "union_in_place" 4 (Bitset.cardinal a);
  Bitset.inter_in_place a b;
  check_int "inter_in_place" 2 (Bitset.cardinal a);
  Bitset.diff_in_place a (Bitset.of_list 70 [ 2 ]);
  check_int "diff_in_place" 1 (Bitset.cardinal a);
  check "left over" true (Bitset.mem a 3)

let test_bitset_capacity_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 11 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Bitset: capacity mismatch (10 vs 11)") (fun () ->
      ignore (Bitset.union a b))

let test_bitset_iteration_order () =
  let s = Bitset.of_list 200 [ 150; 3; 62; 61; 199; 0 ] in
  Alcotest.(check (list int))
    "ascending" [ 0; 3; 61; 62; 150; 199 ] (Bitset.elements s);
  Alcotest.(check (option int)) "min" (Some 0) (Bitset.min_elt s);
  Alcotest.(check (option int)) "max" (Some 199) (Bitset.max_elt s);
  Alcotest.(check (option int)) "choose" (Some 0) (Bitset.choose s)

let test_bitset_copy_isolated () =
  let a = Bitset.of_list 10 [ 1 ] in
  let b = Bitset.copy a in
  Bitset.add b 2;
  check "original untouched" false (Bitset.mem a 2);
  check "copy has it" true (Bitset.mem b 2)

let test_bitset_to_string () =
  let s = Bitset.of_list 10 [ 1; 5 ] in
  Alcotest.(check string) "render" "{1, 5}" (Bitset.to_string s)

(* qcheck: bitset algebra laws *)

let gen_small_set =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(list_size (int_bound 30) (int_bound 99))

let prop_union_commutative =
  QCheck.Test.make ~name:"bitset union commutative" ~count:200
    (QCheck.pair gen_small_set gen_small_set) (fun (la, lb) ->
      let a = Bitset.of_list 100 la and b = Bitset.of_list 100 lb in
      Bitset.equal (Bitset.union a b) (Bitset.union b a))

let prop_de_morgan =
  QCheck.Test.make ~name:"bitset De Morgan" ~count:200
    (QCheck.pair gen_small_set gen_small_set) (fun (la, lb) ->
      let a = Bitset.of_list 100 la and b = Bitset.of_list 100 lb in
      Bitset.equal
        (Bitset.complement (Bitset.union a b))
        (Bitset.inter (Bitset.complement a) (Bitset.complement b)))

let prop_cardinal_inclusion_exclusion =
  QCheck.Test.make ~name:"bitset |A|+|B| = |A∪B|+|A∩B|" ~count:200
    (QCheck.pair gen_small_set gen_small_set) (fun (la, lb) ->
      let a = Bitset.of_list 100 la and b = Bitset.of_list 100 lb in
      Bitset.cardinal a + Bitset.cardinal b
      = Bitset.cardinal (Bitset.union a b) + Bitset.cardinal (Bitset.inter a b))

let prop_elements_sorted_distinct =
  QCheck.Test.make ~name:"bitset elements sorted distinct" ~count:200
    gen_small_set (fun l ->
      let e = Bitset.elements (Bitset.of_list 100 l) in
      List.sort_uniq compare e = e)

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let xs = List.init 20 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1_000_000) in
  check "different streams" true (xs <> ys)

let test_prng_int_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    check "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_split_independent () =
  let g = Prng.create 5 in
  let a = Prng.split g and b = Prng.split g in
  let xs = List.init 10 (fun _ -> Prng.int a 1000) in
  let ys = List.init 10 (fun _ -> Prng.int b 1000) in
  check "split streams differ" true (xs <> ys)

let test_prng_float_range () =
  let g = Prng.create 3 in
  for _ = 1 to 1000 do
    let f = Prng.float g 2.5 in
    check "float range" true (f >= 0.0 && f < 2.5)
  done

let test_prng_uniformity_rough () =
  (* 10k draws over 10 buckets: each bucket within [800, 1200]. *)
  let g = Prng.create 99 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      check (Printf.sprintf "bucket %d balanced (%d)" i c) true
        (c > 800 && c < 1200))
    buckets

let test_prng_shuffle_permutation () =
  let g = Prng.create 12 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_sample_without_replacement () =
  let g = Prng.create 8 in
  for _ = 1 to 50 do
    let s = Prng.sample_without_replacement g 20 7 in
    check_int "size" 7 (List.length s);
    check "distinct" true (List.sort_uniq compare s = s);
    List.iter (fun v -> check "range" true (v >= 0 && v < 20)) s
  done;
  check_int "all" 5 (List.length (Prng.sample_without_replacement g 5 5));
  Alcotest.check_raises "too many" (Invalid_argument "Prng.sample_without_replacement")
    (fun () -> ignore (Prng.sample_without_replacement g 3 4))

(* ------------------------------------------------------------------ *)
(* Primes *)

let test_primes_small () =
  let primes = [ 2; 3; 5; 7; 11; 13; 17; 19; 23 ] in
  List.iter (fun p -> check (string_of_int p) true (Stdx.Primes.is_prime p)) primes;
  List.iter
    (fun c -> check (string_of_int c) false (Stdx.Primes.is_prime c))
    [ -7; 0; 1; 4; 6; 8; 9; 10; 12; 15; 21; 25; 49; 121 ]

let test_next_prime () =
  check_int "next 0" 2 (Stdx.Primes.next_prime 0);
  check_int "next 2" 2 (Stdx.Primes.next_prime 2);
  check_int "next 3" 3 (Stdx.Primes.next_prime 3);
  check_int "next 4" 5 (Stdx.Primes.next_prime 4);
  check_int "next 8" 11 (Stdx.Primes.next_prime 8);
  check_int "next 90" 97 (Stdx.Primes.next_prime 90)

let test_primes_up_to () =
  Alcotest.(check (list int)) "up to 20" [ 2; 3; 5; 7; 11; 13; 17; 19 ]
    (Stdx.Primes.primes_up_to 20);
  Alcotest.(check (list int)) "up to 1" [] (Stdx.Primes.primes_up_to 1);
  check_int "count to 1000" 168 (List.length (Stdx.Primes.primes_up_to 1000))

let prop_next_prime_is_prime_and_minimal =
  QCheck.Test.make ~name:"next_prime minimal" ~count:200
    QCheck.(int_bound 2000) (fun n ->
      let p = Stdx.Primes.next_prime n in
      Stdx.Primes.is_prime p
      && p >= n
      && (let rec no_prime_between m = m >= p || ((not (Stdx.Primes.is_prime m)) && no_prime_between (m + 1)) in
          no_prime_between (max 2 n)))

(* ------------------------------------------------------------------ *)
(* Mathx *)

let test_ceil_log2 () =
  check_int "0" 0 (Mathx.ceil_log2 0);
  check_int "1" 0 (Mathx.ceil_log2 1);
  check_int "2" 1 (Mathx.ceil_log2 2);
  check_int "3" 2 (Mathx.ceil_log2 3);
  check_int "4" 2 (Mathx.ceil_log2 4);
  check_int "5" 3 (Mathx.ceil_log2 5);
  check_int "1024" 10 (Mathx.ceil_log2 1024);
  check_int "1025" 11 (Mathx.ceil_log2 1025)

let test_floor_log2 () =
  check_int "1" 0 (Mathx.floor_log2 1);
  check_int "2" 1 (Mathx.floor_log2 2);
  check_int "3" 1 (Mathx.floor_log2 3);
  check_int "4" 2 (Mathx.floor_log2 4);
  check_int "1023" 9 (Mathx.floor_log2 1023)

let test_pow () =
  check_int "2^10" 1024 (Mathx.pow 2 10);
  check_int "3^4" 81 (Mathx.pow 3 4);
  check_int "x^0" 1 (Mathx.pow 17 0);
  check_int "0^0" 1 (Mathx.pow 0 0);
  check_int "1^big" 1 (Mathx.pow 1 60)

let test_isqrt () =
  check_int "0" 0 (Mathx.isqrt 0);
  check_int "1" 1 (Mathx.isqrt 1);
  check_int "15" 3 (Mathx.isqrt 15);
  check_int "16" 4 (Mathx.isqrt 16);
  check_int "17" 4 (Mathx.isqrt 17);
  check_int "big" 1_000_000 (Mathx.isqrt 1_000_000_000_000)

let test_divide_round_up () =
  check_int "7/3" 3 (Mathx.divide_round_up 7 3);
  check_int "6/3" 2 (Mathx.divide_round_up 6 3);
  check_int "0/3" 0 (Mathx.divide_round_up 0 3)

let prop_pow_log_inverse =
  QCheck.Test.make ~name:"ceil_log2 (pow 2 e) = e" ~count:60
    QCheck.(int_bound 40) (fun e ->
      Mathx.ceil_log2 (Mathx.pow 2 e) = max 0 e || e = 0)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let s = Stdx.Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stdx.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stdx.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Stdx.Stats.max;
  Alcotest.(check (float 1e-9)) "median" 3.0 s.Stdx.Stats.median;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) s.Stdx.Stats.stddev

let test_stats_single () =
  let s = Stdx.Stats.summarize [| 7.0 |] in
  Alcotest.(check (float 1e-9)) "stddev of one" 0.0 s.Stdx.Stats.stddev;
  Alcotest.(check (float 1e-9)) "median of one" 7.0 s.Stdx.Stats.median

let test_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stdx.Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p90" 90.0 (Stdx.Stats.percentile xs 90.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stdx.Stats.percentile xs 100.0)

(* Regression: sorting with polymorphic [compare] treats NaN
   incoherently (every comparison against NaN can answer [false]), so a
   NaN anywhere in the sample could leave finite entries unsorted and
   silently shift every percentile.  [Float.compare] gives NaN a fixed
   total-order position instead. *)
let test_percentile_nan () =
  let xs = [| 5.0; Float.nan; 1.0; 4.0; 2.0; 3.0 |] in
  (* NaN sorts below every number under Float.compare, so only the
     bottom percentile sees it; the finite suffix stays correctly
     ordered and the upper percentiles are exact. *)
  Alcotest.(check bool) "p0 is the NaN slot" true
    (Float.is_nan (Stdx.Stats.percentile xs 0.0));
  Alcotest.(check (float 1e-9)) "p100 is the finite maximum" 5.0
    (Stdx.Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p50 unaffected" 2.0
    (Stdx.Stats.percentile xs 50.0)

(* ------------------------------------------------------------------ *)
(* Tablefmt *)

let test_table_render () =
  let t = Stdx.Tablefmt.create [ Stdx.Tablefmt.column ~align:Stdx.Tablefmt.Left "name"; Stdx.Tablefmt.column "x" ] in
  Stdx.Tablefmt.add_row t [ "a"; "1" ];
  Stdx.Tablefmt.add_row t [ "bb"; "22" ];
  let out = Stdx.Tablefmt.render t in
  check "contains header" true
    (String.length out > 0
    && String.sub out 0 1 = "|");
  (* Row width mismatch *)
  Alcotest.check_raises "bad row"
    (Invalid_argument "Tablefmt.add_row: expected 2 cells, got 1") (fun () ->
      Stdx.Tablefmt.add_row t [ "x" ])

let test_table_csv () =
  let t = Stdx.Tablefmt.create [ Stdx.Tablefmt.column "a"; Stdx.Tablefmt.column "b" ] in
  Stdx.Tablefmt.add_row t [ "1"; "plain" ];
  Stdx.Tablefmt.add_row t [ "2,5"; "say \"hi\"" ];
  Alcotest.(check string) "csv"
    "a,b\n1,plain\n\"2,5\",\"say \"\"hi\"\"\"\n"
    (Stdx.Tablefmt.to_csv t)

let test_table_write_csv () =
  let t = Stdx.Tablefmt.create [ Stdx.Tablefmt.column "x" ] in
  Stdx.Tablefmt.add_row t [ "42" ];
  let path = Filename.temp_file "tbl" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Stdx.Tablefmt.write_csv t path;
      let ic = open_in path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "file contents" "x\n42\n" contents)

let test_table_cells () =
  Alcotest.(check string) "int" "42" (Stdx.Tablefmt.cell_int 42);
  Alcotest.(check string) "float" "3.142" (Stdx.Tablefmt.cell_float 3.14159);
  Alcotest.(check string) "ratio" "0.7500" (Stdx.Tablefmt.cell_ratio 0.75);
  Alcotest.(check string) "bool ok" "ok" (Stdx.Tablefmt.cell_bool true);
  Alcotest.(check string) "bool fail" "FAIL" (Stdx.Tablefmt.cell_bool false)

(* ------------------------------------------------------------------ *)
(* Dynvec *)

let test_dynvec_push_get () =
  let v = Stdx.Dynvec.create () in
  check "empty" true (Stdx.Dynvec.is_empty v);
  for i = 0 to 99 do
    Stdx.Dynvec.push v (i * i)
  done;
  check_int "length" 100 (Stdx.Dynvec.length v);
  check_int "get 7" 49 (Stdx.Dynvec.get v 7);
  Stdx.Dynvec.set v 7 1000;
  check_int "set" 1000 (Stdx.Dynvec.get v 7);
  Alcotest.check_raises "oob" (Invalid_argument "Dynvec: index out of range")
    (fun () -> ignore (Stdx.Dynvec.get v 100))

let test_dynvec_fold_iter () =
  let v = Stdx.Dynvec.create () in
  List.iter (Stdx.Dynvec.push v) [ 1; 2; 3; 4 ];
  check_int "fold" 10 (Stdx.Dynvec.fold ( + ) 0 v);
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3; 4 ] (Stdx.Dynvec.to_list v);
  check "exists" true (Stdx.Dynvec.exists (fun x -> x = 3) v);
  check "not exists" false (Stdx.Dynvec.exists (fun x -> x = 9) v);
  Stdx.Dynvec.clear v;
  check_int "cleared" 0 (Stdx.Dynvec.length v)

(* ------------------------------------------------------------------ *)
(* Jsonx: the one JSON codec shared by Obs.Export and the serve wire
   protocol *)

module J = Stdx.Jsonx

let check_string = Alcotest.(check string)

let parse_ok s =
  match J.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "parse %S: %s" s e

let test_jsonx_roundtrip () =
  let samples =
    [
      J.Null;
      J.Bool true;
      J.Int (-42);
      J.Float 1.5;
      J.Str "plain";
      J.Str "esc \"quotes\" \\ back\nnew\ttab\rret";
      J.Str "ctrl \x01\x1f end";
      J.Arr [];
      J.Obj [];
      J.Arr [ J.Int 1; J.Str "two"; J.Null; J.Bool false ];
      J.Obj
        [
          ("a", J.Int 1);
          ("nested", J.Obj [ ("b", J.Arr [ J.Float 0.25 ]) ]);
          ("empty key", J.Str "");
        ];
    ]
  in
  List.iter
    (fun j ->
      let s = J.to_string j in
      check (Printf.sprintf "roundtrip %s" s) true (parse_ok s = j))
    samples

let test_jsonx_escape_matches_obs () =
  (* The shared escaper must keep producing exactly the bytes
     Obs.Export always wrote (golden JSONL files depend on them). *)
  check_string "quote" "\\\"" (J.escape "\"");
  check_string "backslash" "\\\\" (J.escape "\\");
  check_string "newline" "\\n" (J.escape "\n");
  check_string "tab" "\\t" (J.escape "\t");
  check_string "return" "\\r" (J.escape "\r");
  check_string "low ctrl" "\\u0001" (J.escape "\x01");
  check_string "passthrough" "abc {}" (J.escape "abc {}")

let test_jsonx_parse_accepts () =
  check "ws" true (parse_ok "  { \"a\" : [ 1 , 2 ] }  " = J.Obj [ ("a", J.Arr [ J.Int 1; J.Int 2 ]) ]);
  check "neg exp" true (parse_ok "-1.5e2" = J.Float (-150.0));
  check "unsigned exp" true (parse_ok "2E3" = J.Float 2000.0);
  check "frac exp" true (parse_ok "0.5e-1" = J.Float 0.05);
  check "int" true (parse_ok "123" = J.Int 123);
  check "escapes" true (parse_ok {|"A\n\/"|} = J.Str "A\n/");
  (* surrogate pair -> UTF-8 *)
  check "surrogates" true (parse_ok {|"😀"|} = J.Str "\xf0\x9f\x98\x80");
  check "dup keys keep first" true
    (J.mem_int "a" (parse_ok {|{"a":1,"a":2}|}) = Some 1
    || J.mem_int "a" (parse_ok {|{"a":1,"a":2}|}) = Some 2)

let test_jsonx_parse_rejects () =
  let bad s =
    match J.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parsed: %S" s
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "{\"a\" 1}";
  bad "\"unterminated";
  bad "tru";
  bad "1 2";
  (* trailing bytes *)
  bad "nullx";
  bad "\"bad \\q escape\"";
  (* malformed number lexemes must come back as Error, never raise
     (float_of_string on "1e" would throw Failure) *)
  bad "1e";
  bad "1E+";
  bad "-.";
  bad "-";
  bad "1.";
  bad ".5";
  bad "2e-";
  bad "{\"op\":\"ping\",\"x\":1e}";
  (* deeper than max_depth *)
  bad (String.make 200 '[' ^ String.make 200 ']')

let test_jsonx_accessors () =
  let j = parse_ok {|{"s":"x","i":7,"b":true,"f":2.5,"n":null}|} in
  check "mem_str" true (J.mem_str "s" j = Some "x");
  check "mem_int" true (J.mem_int "i" j = Some 7);
  check "mem_bool" true (J.mem_bool "b" j = Some true);
  check "to_float of int" true
    (Option.bind (J.member "i" j) J.to_float = Some 7.0);
  check "missing" true (J.member "zz" j = None);
  check "wrong type" true (J.mem_int "s" j = None)

let test_jsonx_float_fidelity () =
  (* Floats survive print -> parse exactly; non-finite encode as null. *)
  List.iter
    (fun f ->
      match parse_ok (J.to_string (J.Float f)) with
      | J.Float g -> check (string_of_float f) true (g = f)
      | J.Int g -> check (string_of_float f) true (float_of_int g = f)
      | _ -> Alcotest.fail "not a number")
    [ 0.25; -1.0e-7; 3.141592653589793; 1e300; 0.1 ];
  check_string "nan is null" "null" (J.to_string (J.Float Float.nan));
  check_string "inf is null" "null" (J.to_string (J.Float Float.infinity))

(* Jsonx.append_entry: the trajectory-file primitive behind
   BENCH_largen.json — append-only, atomic, never silently drops
   history. *)

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_tmp_json f =
  let path = Filename.temp_file "jsonx_traj" ".json" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [
          path;
          path ^ ".corrupt";
          path ^ ".lock";
          Printf.sprintf "%s.%d.tmp" path (Unix.getpid ());
        ])
    (fun () -> f path)

let header = [ ("bench", J.Str "t"); ("schema", J.Int 1) ]

let entries path =
  match J.member "entries" (parse_ok (slurp path)) with
  | Some (J.Arr l) -> l
  | _ -> Alcotest.fail "no entries array"

let test_jsonx_append_creates () =
  with_tmp_json (fun path ->
      J.append_entry ~path ~header (J.Int 1);
      let j = parse_ok (slurp path) in
      check "header kept" true (J.mem_str "bench" j = Some "t");
      check "one entry" true (entries path = [ J.Int 1 ]);
      check "no tmp left behind" false
        (Sys.file_exists (Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()))))

let test_jsonx_append_preserves_history () =
  with_tmp_json (fun path ->
      J.append_entry ~path ~header (J.Int 1);
      J.append_entry ~path ~header (J.Str "two");
      J.append_entry ~path ~header (J.Obj [ ("n", J.Int 3) ]);
      check "appends, never overwrites" true
        (entries path = [ J.Int 1; J.Str "two"; J.Obj [ ("n", J.Int 3) ] ]))

(* Concurrent appenders (parallel bench/CI legs writing one trajectory)
   must not lose entries: each append is a read-modify-rename, so
   without serialisation two racers both read N entries and the losing
   rename drops one.  Four domains hammering one file must land every
   entry exactly once. *)
let test_jsonx_append_concurrent_loses_nothing () =
  with_tmp_json (fun path ->
      let domains = 4 and per = 8 in
      let spawn d =
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              J.append_entry ~path ~header (J.Int ((d * per) + i))
            done)
      in
      List.iter Domain.join (List.map spawn [ 0; 1; 2; 3 ]);
      let got =
        List.filter_map (function J.Int n -> Some n | _ -> None)
          (entries path)
      in
      check_int "every concurrent append landed" (domains * per)
        (List.length got);
      check "entries are exactly 0..31, no duplicates" true
        (List.sort compare got = List.init (domains * per) Fun.id))

let test_jsonx_append_moves_corrupt_aside () =
  with_tmp_json (fun path ->
      let oc = open_out_bin path in
      output_string oc "{not json";
      close_out oc;
      J.append_entry ~path ~header (J.Int 9);
      check "fresh history after corruption" true (entries path = [ J.Int 9 ]);
      check "corrupt original preserved aside" true
        (Sys.file_exists (path ^ ".corrupt"));
      check_string "aside holds the original bytes" "{not json"
        (slurp (path ^ ".corrupt")))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "stdx"
    [
      ( "bitset",
        [
          Alcotest.test_case "empty" `Quick test_bitset_empty;
          Alcotest.test_case "add/remove" `Quick test_bitset_add_remove;
          Alcotest.test_case "full" `Quick test_bitset_full;
          Alcotest.test_case "range errors" `Quick test_bitset_range_errors;
          Alcotest.test_case "algebra" `Quick test_bitset_algebra;
          Alcotest.test_case "in place" `Quick test_bitset_in_place;
          Alcotest.test_case "capacity mismatch" `Quick test_bitset_capacity_mismatch;
          Alcotest.test_case "iteration order" `Quick test_bitset_iteration_order;
          Alcotest.test_case "copy isolated" `Quick test_bitset_copy_isolated;
          Alcotest.test_case "to_string" `Quick test_bitset_to_string;
        ] );
      qsuite "bitset-props"
        [
          prop_union_commutative;
          prop_de_morgan;
          prop_cardinal_inclusion_exclusion;
          prop_elements_sorted_distinct;
        ];
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "rough uniformity" `Quick test_prng_uniformity_rough;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick
            test_prng_sample_without_replacement;
        ] );
      ( "primes",
        [
          Alcotest.test_case "small primes" `Quick test_primes_small;
          Alcotest.test_case "next_prime" `Quick test_next_prime;
          Alcotest.test_case "primes_up_to" `Quick test_primes_up_to;
        ] );
      qsuite "primes-props" [ prop_next_prime_is_prime_and_minimal ];
      ( "mathx",
        [
          Alcotest.test_case "ceil_log2" `Quick test_ceil_log2;
          Alcotest.test_case "floor_log2" `Quick test_floor_log2;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "isqrt" `Quick test_isqrt;
          Alcotest.test_case "divide_round_up" `Quick test_divide_round_up;
        ] );
      qsuite "mathx-props" [ prop_pow_log_inverse ];
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "single" `Quick test_stats_single;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile NaN" `Quick test_percentile_nan;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "write csv" `Quick test_table_write_csv;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ( "dynvec",
        [
          Alcotest.test_case "push/get" `Quick test_dynvec_push_get;
          Alcotest.test_case "fold/iter" `Quick test_dynvec_fold_iter;
        ] );
      ( "jsonx",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "escape = Obs.Export bytes" `Quick
            test_jsonx_escape_matches_obs;
          Alcotest.test_case "parse accepts" `Quick test_jsonx_parse_accepts;
          Alcotest.test_case "parse rejects" `Quick test_jsonx_parse_rejects;
          Alcotest.test_case "accessors" `Quick test_jsonx_accessors;
          Alcotest.test_case "float fidelity" `Quick test_jsonx_float_fidelity;
          Alcotest.test_case "append_entry creates" `Quick
            test_jsonx_append_creates;
          Alcotest.test_case "append_entry concurrent appenders" `Quick
            test_jsonx_append_concurrent_loses_nothing;
          Alcotest.test_case "append_entry preserves history" `Quick
            test_jsonx_append_preserves_history;
          Alcotest.test_case "append_entry moves corruption aside" `Quick
            test_jsonx_append_moves_corrupt_aside;
        ] );
    ]
