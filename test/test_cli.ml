(* End-to-end tests of the maxis_lb CLI's documented exit-code contract:
     0   every check passed
     2   a claimed bound was checked and is violated
     3   no failures, but the budget exhausted before some check decided
     4   an I/O failure (cache, journal, CSV) escaped retries
     124 usage error (cmdliner's convention)
   plus unit tests of the [Verification.exit_code] precedence those codes
   come from.

   The exe is a declared dune dep, reached relative to the test cwd
   (_build/default/test). *)

let exe = Filename.concat ".." (Filename.concat "bin" "maxis_lb.exe")

let run args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote exe) args)

let check_int = Alcotest.(check int)

(* Small parameters so each invocation solves in well under a second. *)
let base = "verify --players 2 --ell 3 --samples 1 --no-cache"

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end
  else if Sys.file_exists dir then Sys.remove dir

let test_exit_ok () = check_int "all checks pass" 0 (run base)

let test_exit_inconclusive () =
  (* One branch-and-bound node cannot decide the claim checks, but a
     certified interval can never show a *violation* either — so the only
     possible outcomes are Pass and Inconclusive, deterministically. *)
  check_int "budget exhausted" 3 (run (base ^ " --budget-nodes 1"))

let test_exit_usage () =
  check_int "bad --jobs" 124 (run (base ^ " --jobs 0"));
  check_int "--resume without --run-id" 124 (run (base ^ " --resume"))

let test_exit_io_error () =
  (* Block journal creation: a regular file where the journal directory
     must go makes [Journal.open_] raise [Error (Journal_io _)], which the
     CLI's I/O guard maps to exit 4. *)
  rm_rf (Filename.concat "results" "journal");
  if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
  let blocker = Filename.concat "results" "journal" in
  let oc = open_out blocker in
  close_out oc;
  let code = run (base ^ " --run-id cli-io") in
  Sys.remove blocker;
  check_int "journal open fails" 4 code

let test_exit_journal_round_trip () =
  rm_rf (Filename.concat "results" "journal");
  check_int "journaled run" 0 (run (base ^ " --run-id cli-e2e"));
  check_int "resumed run" 0 (run (base ^ " --run-id cli-e2e --resume"));
  rm_rf (Filename.concat "results" "journal")

(* ------------------------------------------------------------------ *)
(* Verification.exit_code precedence *)

module V = Maxis_core.Verification

let item status = { V.name = "x"; status; detail = "" }

let inconclusive =
  item (V.Inconclusive { reason = "nodes"; lb = 1; ub = 9 })

let test_exit_code_unit () =
  check_int "empty" 0 (V.exit_code []);
  check_int "all pass" 0 (V.exit_code [ item V.Pass; item V.Pass ]);
  check_int "inconclusive" 3 (V.exit_code [ item V.Pass; inconclusive ]);
  check_int "fail" 2 (V.exit_code [ item V.Pass; item V.Fail ]);
  check_int "fail beats inconclusive" 2
    (V.exit_code [ inconclusive; item V.Fail; item V.Pass ])

let () =
  Alcotest.run "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "0 on success" `Quick test_exit_ok;
          Alcotest.test_case "3 on exhausted budget" `Quick
            test_exit_inconclusive;
          Alcotest.test_case "124 on usage errors" `Quick test_exit_usage;
          Alcotest.test_case "4 on I/O errors" `Quick test_exit_io_error;
          Alcotest.test_case "journal round trip" `Quick
            test_exit_journal_round_trip;
        ] );
      ( "exit-code-unit",
        [ Alcotest.test_case "precedence" `Quick test_exit_code_unit ] );
    ]
