(* End-to-end tests of the maxis_lb CLI's documented exit-code contract:
     0   every check passed
     2   a claimed bound was checked and is violated
     3   no failures, but the budget exhausted before some check decided
     4   an I/O failure (cache, journal, CSV) escaped retries
     124 usage error (cmdliner's convention)
   plus unit tests of the [Verification.exit_code] precedence those codes
   come from.

   The exe is a declared dune dep, reached relative to the test cwd
   (_build/default/test). *)

let exe = Filename.concat ".." (Filename.concat "bin" "maxis_lb.exe")

let run args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote exe) args)

let check_int = Alcotest.(check int)

(* Small parameters so each invocation solves in well under a second. *)
let base = "verify --players 2 --ell 3 --samples 1 --no-cache"

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end
  else if Sys.file_exists dir then Sys.remove dir

let test_exit_ok () = check_int "all checks pass" 0 (run base)

let test_exit_inconclusive () =
  (* One branch-and-bound node cannot decide the claim checks, but a
     certified interval can never show a *violation* either — so the only
     possible outcomes are Pass and Inconclusive, deterministically. *)
  check_int "budget exhausted" 3 (run (base ^ " --budget-nodes 1"))

let test_exit_usage () =
  check_int "bad --jobs" 124 (run (base ^ " --jobs 0"));
  check_int "--resume without --run-id" 124 (run (base ^ " --resume"))

let test_exit_io_error () =
  (* Block journal creation: a regular file where the journal directory
     must go makes [Journal.open_] raise [Error (Journal_io _)], which the
     CLI's I/O guard maps to exit 4. *)
  rm_rf (Filename.concat "results" "journal");
  if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
  let blocker = Filename.concat "results" "journal" in
  let oc = open_out blocker in
  close_out oc;
  let code = run (base ^ " --run-id cli-io") in
  Sys.remove blocker;
  check_int "journal open fails" 4 code

let test_exit_journal_round_trip () =
  rm_rf (Filename.concat "results" "journal");
  check_int "journaled run" 0 (run (base ^ " --run-id cli-e2e"));
  check_int "resumed run" 0 (run (base ^ " --run-id cli-e2e --resume"));
  rm_rf (Filename.concat "results" "journal")

(* ------------------------------------------------------------------ *)
(* Metrics on/off parity: the observability layer must not perturb the
   deterministic stdout contract.  All metrics output goes to the JSONL
   file and stderr, so stdout must be byte-identical with the export on
   or off — for the CLI and for the bench harness alike. *)

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_capture cmd out =
  Sys.command (Printf.sprintf "%s >%s 2>/dev/null" cmd (Filename.quote out))

let check_bool = Alcotest.(check bool)

let test_cli_metrics_parity () =
  let plain = Filename.temp_file "cli_plain" ".out" in
  let metered = Filename.temp_file "cli_metered" ".out" in
  let jsonl = Filename.temp_file "cli_metrics" ".jsonl" in
  let cmd = Printf.sprintf "%s %s" (Filename.quote exe) base in
  check_int "plain run" 0 (run_capture cmd plain);
  check_int "metered run" 0
    (run_capture (Printf.sprintf "%s --metrics=%s" cmd (Filename.quote jsonl))
       metered);
  Alcotest.(check string)
    "stdout byte-identical with and without --metrics" (slurp plain)
    (slurp metered);
  (* The export itself landed and contains the solver's counters. *)
  let exported = slurp jsonl in
  check_bool "JSONL mentions solver_nodes_total" true
    (let needle = "solver_nodes_total" in
     let nh = String.length exported and nn = String.length needle in
     let rec go i =
       i + nn <= nh && (String.sub exported i nn = needle || go (i + 1))
     in
     go 0);
  List.iter Sys.remove [ plain; metered; jsonl ]

let bench_exe = Filename.concat ".." (Filename.concat "bench" "main.exe")

let test_bench_metrics_parity () =
  let plain = Filename.temp_file "bench_plain" ".out" in
  let metered = Filename.temp_file "bench_metered" ".out" in
  let jsonl = Filename.temp_file "bench_metrics" ".jsonl" in
  (* T1-gap is a cheap deterministic cell; MAXIS_NO_CACHE keeps the two
     runs truly identical work-wise. *)
  let cmd capture env =
    Sys.command
      (Printf.sprintf "%s MAXIS_NO_CACHE=1 %s T1-gap >%s 2>/dev/null" env
         (Filename.quote bench_exe) (Filename.quote capture))
  in
  check_int "plain bench cell" 0 (cmd plain "env");
  check_int "metered bench cell" 0
    (cmd metered (Printf.sprintf "env MAXIS_METRICS=%s" (Filename.quote jsonl)));
  Alcotest.(check string)
    "bench stdout byte-identical with and without MAXIS_METRICS"
    (slurp plain) (slurp metered);
  check_bool "bench export landed" true (String.length (slurp jsonl) > 0);
  List.iter Sys.remove [ plain; metered; jsonl ]

(* ------------------------------------------------------------------ *)
(* simulate --engine parity: the flat and sharded executors must print a
   byte-identical report (same rounds, cut traffic, OPT and answer) —
   the engine choice is a performance knob, never an observable one. *)

let sim_base = "simulate --players 2 --ell 3"

let test_engine_stdout_parity () =
  let out_list = Filename.temp_file "sim_list" ".out" in
  let out_flat = Filename.temp_file "sim_flat" ".out" in
  let out_fpar = Filename.temp_file "sim_fpar" ".out" in
  let cmd engine out =
    run_capture
      (Printf.sprintf "%s %s --engine=%s" (Filename.quote exe) sim_base engine)
      out
  in
  check_int "list engine" 0 (cmd "list" out_list);
  check_int "flat engine" 0 (cmd "flat" out_flat);
  check_int "flat-par engine" 0
    (run_capture
       (Printf.sprintf "%s %s --engine=flat-par --jobs 3" (Filename.quote exe)
          sim_base)
       out_fpar);
  Alcotest.(check string)
    "flat stdout = list stdout" (slurp out_list) (slurp out_flat);
  Alcotest.(check string)
    "flat-par stdout = list stdout" (slurp out_list) (slurp out_fpar);
  List.iter Sys.remove [ out_list; out_flat; out_fpar ]

let test_engine_rejects_faults () =
  check_int "flat + --drop is a usage error" 2
    (run (sim_base ^ " --engine=flat --drop 0.1"));
  check_int "flat-par + --corrupt is a usage error" 2
    (run (sim_base ^ " --engine=flat-par --corrupt 0.1"));
  check_int "list + --drop still runs" 0 (run (sim_base ^ " --drop 0.01"))

(* ------------------------------------------------------------------ *)
(* Verification.exit_code precedence *)

module V = Maxis_core.Verification

let item status = { V.name = "x"; status; detail = "" }

let inconclusive =
  item (V.Inconclusive { reason = "nodes"; lb = 1; ub = 9 })

let test_exit_code_unit () =
  check_int "empty" 0 (V.exit_code []);
  check_int "all pass" 0 (V.exit_code [ item V.Pass; item V.Pass ]);
  check_int "inconclusive" 3 (V.exit_code [ item V.Pass; inconclusive ]);
  check_int "fail" 2 (V.exit_code [ item V.Pass; item V.Fail ]);
  check_int "fail beats inconclusive" 2
    (V.exit_code [ inconclusive; item V.Fail; item V.Pass ])

let () =
  Alcotest.run "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "0 on success" `Quick test_exit_ok;
          Alcotest.test_case "3 on exhausted budget" `Quick
            test_exit_inconclusive;
          Alcotest.test_case "124 on usage errors" `Quick test_exit_usage;
          Alcotest.test_case "4 on I/O errors" `Quick test_exit_io_error;
          Alcotest.test_case "journal round trip" `Quick
            test_exit_journal_round_trip;
        ] );
      ( "metrics-parity",
        [
          Alcotest.test_case "cli stdout parity" `Quick test_cli_metrics_parity;
          Alcotest.test_case "bench stdout parity" `Quick
            test_bench_metrics_parity;
        ] );
      ( "engine-parity",
        [
          Alcotest.test_case "simulate stdout parity" `Quick
            test_engine_stdout_parity;
          Alcotest.test_case "flat engines reject faults" `Quick
            test_engine_rejects_faults;
        ] );
      ( "exit-code-unit",
        [ Alcotest.test_case "precedence" `Quick test_exit_code_unit ] );
    ]
