(* Tests for Params and the base graph H (Section 4.1), pinned against the
   paper's Figure 1 example (ell=2, alpha=1, k=3). *)

module P = Maxis_core.Params
module BG = Maxis_core.Base_graph
module Graph = Wgraph.Graph
module Bitset = Stdx.Bitset

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let figure = P.figure_params ~players:2

(* ------------------------------------------------------------------ *)
(* Params *)

let test_params_figure () =
  check_int "k" 3 (P.k figure);
  check_int "ell" 2 (P.ell figure);
  check_int "alpha" 1 (P.alpha figure);
  check_int "positions" 3 (P.positions figure);
  check_int "q" 3 (P.q figure)

let test_params_validation () =
  Alcotest.check_raises "players" (Invalid_argument "Params.make: need at least 2 players")
    (fun () -> ignore (P.make ~alpha:1 ~ell:2 ~players:1))

let test_params_epsilon_linear () =
  (* eps = 1/3 -> t = 6 *)
  let p = P.for_epsilon_linear ~alpha:1 ~ell:8 ~epsilon:(1.0 /. 3.0) in
  check_int "t" 6 p.P.players;
  Alcotest.check_raises "eps too big"
    (Invalid_argument "Params.for_epsilon_linear: need 0 < epsilon < 1/2")
    (fun () -> ignore (P.for_epsilon_linear ~alpha:1 ~ell:2 ~epsilon:0.6))

let test_params_epsilon_quadratic () =
  (* eps = 1/8 -> t = ceil(6 - 1) = 5 *)
  let p = P.for_epsilon_quadratic ~alpha:1 ~ell:8 ~epsilon:0.125 in
  check_int "t" 5 p.P.players;
  Alcotest.check_raises "eps too big"
    (Invalid_argument "Params.for_epsilon_quadratic: need 0 < epsilon < 1/4")
    (fun () -> ignore (P.for_epsilon_quadratic ~alpha:1 ~ell:2 ~epsilon:0.3))

let test_codeword_access () =
  let w = P.codeword figure 0 in
  check_int "length" 3 (Array.length w);
  Array.iter (fun s -> check "symbol in range" true (s >= 0 && s < 3)) w

(* ------------------------------------------------------------------ *)
(* Node layout *)

let test_copy_size () =
  (* k + positions*q = 3 + 3*3 = 12 *)
  check_int "figure copy" 12 (BG.copy_size figure);
  let p2 = P.make ~alpha:1 ~ell:4 ~players:2 in
  (* k=5, positions=5, q=5 -> 5 + 25 = 30 *)
  check_int "ell=4 copy" 30 (BG.copy_size p2)

let test_node_indexing_roundtrip () =
  let p = figure in
  for m = 0 to P.k p - 1 do
    match BG.node_kind p ~offset:0 (BG.a_node p ~offset:0 ~m) with
    | `A m' -> check_int "a roundtrip" m m'
    | `Sigma _ -> Alcotest.fail "a node misclassified"
  done;
  for h = 0 to P.positions p - 1 do
    for r = 0 to P.q p - 1 do
      match BG.node_kind p ~offset:0 (BG.sigma_node p ~offset:0 ~h ~r) with
      | `Sigma (h', r') ->
          check_int "h roundtrip" h h';
          check_int "r roundtrip" r r'
      | `A _ -> Alcotest.fail "sigma node misclassified"
    done
  done

let test_node_indexing_with_offset () =
  let p = figure in
  let off = BG.copy_size p in
  check_int "a offset" (off + 1) (BG.a_node p ~offset:off ~m:1);
  check_int "sigma offset" (off + 3 + 3 + 2) (BG.sigma_node p ~offset:off ~h:1 ~r:2);
  Alcotest.check_raises "outside copy"
    (Invalid_argument "Base_graph.node_kind: node outside copy") (fun () ->
      ignore (BG.node_kind p ~offset:off 0))

let test_index_bounds () =
  Alcotest.check_raises "bad m" (Invalid_argument "Base_graph.a_node: bad m")
    (fun () -> ignore (BG.a_node figure ~offset:0 ~m:3));
  Alcotest.check_raises "bad h" (Invalid_argument "Base_graph.sigma_node: bad position")
    (fun () -> ignore (BG.sigma_node figure ~offset:0 ~h:3 ~r:0));
  Alcotest.check_raises "bad r" (Invalid_argument "Base_graph.sigma_node: bad symbol")
    (fun () -> ignore (BG.sigma_node figure ~offset:0 ~h:0 ~r:3))

let test_code_nodes_follow_codeword () =
  let p = figure in
  for m = 0 to P.k p - 1 do
    let w = P.codeword p m in
    let nodes = BG.code_nodes p ~offset:0 ~m in
    check_int "one per position" (P.positions p) (Array.length nodes);
    Array.iteri
      (fun h node ->
        check_int "matches codeword symbol" (BG.sigma_node p ~offset:0 ~h ~r:w.(h)) node)
      nodes
  done

(* ------------------------------------------------------------------ *)
(* The wired base graph H (via a 1-copy build) *)

let build_h p =
  let g = Graph.create (BG.copy_size p) in
  BG.build_into p g ~offset:0 ~copy_name:"";
  g

let test_h_census_figure () =
  (* Figure 1: A is K3; three 3-cliques; v_m connected to Code \ Code_m,
     i.e. each v_m has 3 + ... A-clique: deg 2 within A, plus 9 - 3 = 6
     code nodes -> degree 8.  Edges: E(A)=3, 3 cliques x 3 = 9,
     A-to-code: 3 nodes x 6 = 18.  Total 30. *)
  let g = build_h figure in
  check_int "n" 12 (Graph.n g);
  check_int "m" 30 (Graph.edge_count g);
  for m = 0 to 2 do
    check_int "v_m degree" 8 (Graph.degree g (BG.a_node figure ~offset:0 ~m))
  done

let test_h_a_is_clique () =
  let g = build_h figure in
  let a = Bitset.of_list (Graph.n g) (Array.to_list (BG.a_nodes figure ~offset:0)) in
  check "A clique" true (Wgraph.Check.is_clique g a)

let test_h_code_cliques () =
  let g = build_h figure in
  for h = 0 to 2 do
    let c =
      Bitset.of_list (Graph.n g)
        (Array.to_list (BG.code_clique figure ~offset:0 ~h))
    in
    check "C_h clique" true (Wgraph.Check.is_clique g c)
  done

let test_h_vm_vs_code () =
  (* v_m is adjacent to exactly the code nodes outside Code_m. *)
  let p = figure in
  let g = build_h p in
  for m = 0 to P.k p - 1 do
    let vm = BG.a_node p ~offset:0 ~m in
    let code_m =
      Bitset.of_list (Graph.n g) (Array.to_list (BG.code_nodes p ~offset:0 ~m))
    in
    Array.iter
      (fun u ->
        let expected = not (Bitset.mem code_m u) in
        check
          (Printf.sprintf "v_%d vs code node %d" m u)
          expected (Graph.has_edge g vm u))
      (BG.all_code_nodes p ~offset:0)
  done

let test_h_vm_code_m_independent () =
  (* {v_m} ∪ Code_m is independent inside H... wait: Code_m spans distinct
     cliques C_h (one node each) and v_m avoids them; but two code nodes of
     Code_m in different cliques are non-adjacent within H. *)
  let p = figure in
  let g = build_h p in
  for m = 0 to P.k p - 1 do
    let s = Bitset.create (Graph.n g) in
    Bitset.add s (BG.a_node p ~offset:0 ~m);
    Array.iter (fun u -> Bitset.add s u) (BG.code_nodes p ~offset:0 ~m);
    check "independent" true (Wgraph.Check.is_independent g s)
  done

let test_h_labels () =
  let g = build_h figure in
  Alcotest.(check string) "v label" "v_1" (Graph.label g 0);
  Alcotest.(check string) "sigma label" "s_(1,1)" (Graph.label g 3)

let test_h_maxis_value () =
  (* In one unweighted copy of H, OPT = 1 + (ell + alpha): take v_m and
     Code_m (1 + 3 nodes here), or one node per code clique (3) + best A
     compatible...; the exact value on the figure instance is 4. *)
  let g = build_h figure in
  check_int "OPT(H)" 4 (Mis.Exact.opt g)

let test_h_larger_params () =
  (* ell=3, alpha=2: positions=5, q=5, k=25, copy=25+25=50.  Structural
     invariants hold. *)
  let p = P.make ~alpha:2 ~ell:3 ~players:2 in
  let g = build_h p in
  check_int "n" 50 (Graph.n g);
  let a = Bitset.of_list 50 (Array.to_list (BG.a_nodes p ~offset:0)) in
  check "A clique" true (Wgraph.Check.is_clique g a);
  for m = 0 to P.k p - 1 do
    let s = Bitset.create 50 in
    Bitset.add s (BG.a_node p ~offset:0 ~m);
    Array.iter (fun u -> Bitset.add s u) (BG.code_nodes p ~offset:0 ~m);
    check "v_m + Code_m independent" true (Wgraph.Check.is_independent g s)
  done

let prop_h_structure_random_params =
  QCheck.Test.make ~name:"H invariants across parameters" ~count:12
    QCheck.(pair small_int small_int) (fun (e, a) ->
      let ell = 1 + (e mod 5) and alpha = 1 + (a mod 2) in
      let p = P.make ~alpha ~ell ~players:2 in
      let g = build_h p in
      Graph.n g = BG.copy_size p
      && Wgraph.Check.is_clique g
           (Bitset.of_list (Graph.n g) (Array.to_list (BG.a_nodes p ~offset:0)))
      && (let ok = ref true in
          for m = 0 to min 5 (P.k p - 1) do
            let s = Bitset.create (Graph.n g) in
            Bitset.add s (BG.a_node p ~offset:0 ~m);
            Array.iter (fun u -> Bitset.add s u) (BG.code_nodes p ~offset:0 ~m);
            if not (Wgraph.Check.is_independent g s) then ok := false
          done;
          !ok))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "base-graph"
    [
      ( "params",
        [
          Alcotest.test_case "figure" `Quick test_params_figure;
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "epsilon linear" `Quick test_params_epsilon_linear;
          Alcotest.test_case "epsilon quadratic" `Quick test_params_epsilon_quadratic;
          Alcotest.test_case "codeword" `Quick test_codeword_access;
        ] );
      ( "layout",
        [
          Alcotest.test_case "copy size" `Quick test_copy_size;
          Alcotest.test_case "roundtrip" `Quick test_node_indexing_roundtrip;
          Alcotest.test_case "offsets" `Quick test_node_indexing_with_offset;
          Alcotest.test_case "bounds" `Quick test_index_bounds;
          Alcotest.test_case "code nodes" `Quick test_code_nodes_follow_codeword;
        ] );
      ( "H",
        [
          Alcotest.test_case "figure census" `Quick test_h_census_figure;
          Alcotest.test_case "A clique" `Quick test_h_a_is_clique;
          Alcotest.test_case "code cliques" `Quick test_h_code_cliques;
          Alcotest.test_case "v_m adjacency" `Quick test_h_vm_vs_code;
          Alcotest.test_case "v_m + Code_m independent" `Quick
            test_h_vm_code_m_independent;
          Alcotest.test_case "labels" `Quick test_h_labels;
          Alcotest.test_case "OPT(H) figure" `Quick test_h_maxis_value;
          Alcotest.test_case "larger params" `Quick test_h_larger_params;
        ] );
      qsuite "H-props" [ prop_h_structure_random_params ];
    ]
