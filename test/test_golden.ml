(* Golden-trace regression tests: pinned-seed runs of three CONGEST
   algorithms on three small graphs, asserting the EXACT round, message,
   bit and delivery counts observed through Obs.Metrics snapshot diffs.
   Any change to the runtime's charging rules, the algorithms' send
   patterns, or the metrics plumbing shows up as a diff against the
   table below.

   All runs use Runtime.default_config (seed 42 pinned); Luby's only
   randomness derives from that seed, so every count is deterministic.

   Regenerate the table after an intentional change with

     MAXIS_GOLDEN_PRINT=1 dune exec test/test_golden.exe 2>/dev/null

   and paste the printed rows over [goldens] below. *)

module M = Obs.Metrics
module Build = Wgraph.Build

let check_int = Alcotest.(check int)

type prog = P : 'o Congest.Program.t -> prog

let graphs () =
  [ ("path6", Build.path 6); ("cycle7", Build.cycle 7); ("k5", Build.complete 5) ]

let programs () =
  [
    P (Congest.Algo_flood.max_id ~rounds:4);
    P (Congest.Algo_bfs.distances ~root:0 ~rounds:4);
    P Congest.Algo_luby.mis;
  ]

type counts = { rounds : int; messages : int; bits : int; deliveries : int }

(* Counts for one pinned run, read back through the metrics layer (so
   this also regression-tests the instrumentation itself, not just the
   runtime). *)
let measure (P program) g =
  let algo = program.Congest.Program.name in
  let labels = [ ("algo", algo) ] in
  let before = M.snapshot () in
  ignore (Congest.Runtime.run program g);
  let d = M.diff ~before ~after:(M.snapshot ()) in
  let c name = int_of_float (M.get ~labels d name) in
  ( algo,
    {
      rounds = c "congest_rounds_total";
      messages = c "congest_messages_total";
      bits = c "congest_bits_total";
      deliveries = c "congest_deliveries_total";
    } )

(* (algo, graph) -> exact counts.  Pinned from a run of this file; see
   the header for how to regenerate. *)
let goldens =
  [
    (("max-id-flood", "path6"), { rounds = 4; messages = 31; bits = 93; deliveries = 31 });
    (("bfs-distances", "path6"), { rounds = 4; messages = 7; bits = 21; deliveries = 7 });
    (("luby-mis", "path6"), { rounds = 3; messages = 20; bits = 70; deliveries = 20 });
    (("max-id-flood", "cycle7"), { rounds = 4; messages = 38; bits = 114; deliveries = 38 });
    (("bfs-distances", "cycle7"), { rounds = 4; messages = 14; bits = 42; deliveries = 14 });
    (("luby-mis", "cycle7"), { rounds = 6; messages = 32; bits = 122; deliveries = 32 });
    (("max-id-flood", "k5"), { rounds = 4; messages = 36; bits = 108; deliveries = 36 });
    (("bfs-distances", "k5"), { rounds = 4; messages = 20; bits = 60; deliveries = 20 });
    (("luby-mis", "k5"), { rounds = 3; messages = 40; bits = 140; deliveries = 40 });
  ]

let print_mode = Sys.getenv_opt "MAXIS_GOLDEN_PRINT" = Some "1"

let run_cell gname g p () =
  let algo, c = measure p g in
  if print_mode then
    Printf.printf
      "((%S, %S), { rounds = %d; messages = %d; bits = %d; deliveries = %d });\n"
      algo gname c.rounds c.messages c.bits c.deliveries
  else begin
    let exp =
      match List.assoc_opt (algo, gname) goldens with
      | Some e -> e
      | None -> Alcotest.fail (Printf.sprintf "no golden for (%s, %s)" algo gname)
    in
    check_int "rounds" exp.rounds c.rounds;
    check_int "messages" exp.messages c.messages;
    check_int "bits" exp.bits c.bits;
    check_int "deliveries" exp.deliveries c.deliveries
  end

(* ------------------------------------------------------------------ *)
(* The acceptance invariant of the metrics layer: the blackboard bits
   counter agrees exactly with Core.Simulation's internal accounting
   (Theorem 5's currency) — the meter is not a second, drifting
   implementation. *)

let test_blackboard_metric_matches_report () =
  let p = Maxis_core.Params.make ~alpha:1 ~ell:4 ~players:3 in
  let rng = Stdx.Prng.create 0x601d in
  let x =
    Commcx.Inputs.gen_promise rng ~k:(Maxis_core.Params.k p) ~t:3
      ~intersecting:false
  in
  let inst = Maxis_core.Linear_family.instance p x in
  let program = Congest.Algo_luby.mis in
  let labels = [ ("algo", program.Congest.Program.name) ] in
  let before = M.snapshot () in
  let _, report = Maxis_core.Simulation.simulate program inst in
  let d = M.diff ~before ~after:(M.snapshot ()) in
  check_int "blackboard_bits_total == report.blackboard_bits"
    report.Maxis_core.Simulation.blackboard_bits
    (int_of_float (M.get ~labels d "blackboard_bits_total"));
  check_int "blackboard_writes_total == report.blackboard_writes"
    report.Maxis_core.Simulation.blackboard_writes
    (int_of_float (M.get ~labels d "blackboard_writes_total"));
  check_int "simulation_runs_total bumped" 1
    (int_of_float (M.get ~labels d "simulation_runs_total"));
  (* The per-player split partitions the total exactly. *)
  let per_player =
    List.fold_left
      (fun acc (s : M.sample) ->
        if s.M.name = "blackboard_player_bits_total" then
          acc + int_of_float s.M.value
        else acc)
      0 d
  in
  check_int "per-player bits sum to the total"
    report.Maxis_core.Simulation.blackboard_bits per_player;
  (* And the per-round histogram saw one observation per round with the
     same total sum. *)
  match M.find ~labels d "blackboard_round_bits" with
  | None -> Alcotest.fail "blackboard_round_bits missing"
  | Some s ->
      check_int "one histogram observation per round"
        report.Maxis_core.Simulation.rounds
        (int_of_float s.M.value);
      check_int "histogram sum = blackboard bits"
        report.Maxis_core.Simulation.blackboard_bits
        (int_of_float s.M.sum)

(* ------------------------------------------------------------------ *)
(* Streaming-trace parity: the trace's O(1) accumulators (the single
   source of truth since the arena rewrite) must agree exactly with a
   fold over the full recorded send log, and a Light-mode trace of the
   same run must agree with the Full one on every streamed query. *)

let sparse_random_graph ~seed n =
  let g = Wgraph.Graph.create n in
  let rng = Stdx.Prng.create seed in
  for v = 0 to n - 1 do
    for _ = 1 to 3 do
      let u = Stdx.Prng.int rng n in
      if u <> v then Wgraph.Graph.add_edge g v u
    done
  done;
  g

let halves n = Array.init n (fun v -> if 2 * v < n then 0 else 1)

let streaming_parity_cell gname g (P program) () =
  let n = Wgraph.Graph.n g in
  let part = halves n in
  let full = Congest.Trace.create ~cut:part () in
  ignore (Congest.Runtime.run ~trace:full program g);
  let sends = Congest.Trace.send_events full in
  let fold f init = Array.fold_left f init sends in
  (* Scalar accumulators vs the log. *)
  check_int "total_messages" (Array.length sends)
    (Congest.Trace.total_messages full);
  check_int "total_bits"
    (fold (fun acc (s : Congest.Trace.send) -> acc + s.Congest.Trace.bits) 0)
    (Congest.Trace.total_bits full);
  (* Per-round accumulators, over every executed round. *)
  for r = 0 to Congest.Trace.rounds full - 1 do
    check_int
      (Printf.sprintf "bits_in_round %d" r)
      (fold
         (fun acc (s : Congest.Trace.send) ->
           if s.Congest.Trace.round = r then acc + s.Congest.Trace.bits
           else acc)
         0)
      (Congest.Trace.bits_in_round full r);
    check_int
      (Printf.sprintf "messages_in_round %d" r)
      (fold
         (fun acc (s : Congest.Trace.send) ->
           if s.Congest.Trace.round = r then acc + 1 else acc)
         0)
      (Congest.Trace.messages_in_round full r)
  done;
  (* Registered-cut accumulators vs the log. *)
  let crossing (s : Congest.Trace.send) =
    part.(s.Congest.Trace.src) <> part.(s.Congest.Trace.dst)
  in
  check_int "cut_bits"
    (fold
       (fun acc s -> if crossing s then acc + s.Congest.Trace.bits else acc)
       0)
    (Congest.Trace.cut_bits full part);
  check_int "cut_messages"
    (fold (fun acc s -> if crossing s then acc + 1 else acc) 0)
    (Congest.Trace.cut_messages full part);
  let by_side = Congest.Trace.cut_bits_by_side full part in
  Array.iteri
    (fun p want ->
      check_int
        (Printf.sprintf "cut_bits_by_side %d" p)
        (fold
           (fun acc (s : Congest.Trace.send) ->
             if crossing s && part.(s.Congest.Trace.src) = p then
               acc + s.Congest.Trace.bits
             else acc)
           0)
        want)
    by_side;
  check_int "by_side sums to cut_bits"
    (Congest.Trace.cut_bits full part)
    (Array.fold_left ( + ) 0 by_side);
  let by_round = Congest.Trace.cut_bits_by_round full part in
  check_int "by_round length" (Congest.Trace.rounds full)
    (Array.length by_round);
  check_int "by_round sums to cut_bits"
    (Congest.Trace.cut_bits full part)
    (Array.fold_left ( + ) 0 by_round);
  (* max per (round, edge) — fold recomputation vs the trace's answer. *)
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun (s : Congest.Trace.send) ->
      let key =
        (s.Congest.Trace.round, s.Congest.Trace.src, s.Congest.Trace.dst)
      in
      Hashtbl.replace tbl key
        (s.Congest.Trace.bits
        + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    sends;
  check_int "max_bits_per_edge_round"
    (Hashtbl.fold (fun _ v acc -> max acc v) tbl 0)
    (Congest.Trace.max_bits_per_edge_round full);
  (* A Light-mode replay of the identical run agrees on every streamed
     query. *)
  let light = Congest.Trace.create ~mode:Congest.Trace.Light ~cut:part () in
  ignore (Congest.Runtime.run ~trace:light program g);
  check_int (gname ^ ": light rounds") (Congest.Trace.rounds full)
    (Congest.Trace.rounds light);
  check_int "light total_messages"
    (Congest.Trace.total_messages full)
    (Congest.Trace.total_messages light);
  check_int "light total_bits" (Congest.Trace.total_bits full)
    (Congest.Trace.total_bits light);
  for r = 0 to Congest.Trace.rounds full - 1 do
    check_int "light bits_in_round"
      (Congest.Trace.bits_in_round full r)
      (Congest.Trace.bits_in_round light r)
  done;
  check_int "light cut_bits"
    (Congest.Trace.cut_bits full part)
    (Congest.Trace.cut_bits light part);
  check_int "light cut_messages"
    (Congest.Trace.cut_messages full part)
    (Congest.Trace.cut_messages light part);
  check_int "light max_bits_per_edge_round"
    (Congest.Trace.max_bits_per_edge_round full)
    (Congest.Trace.max_bits_per_edge_round light);
  (* Log-shaped queries are unavailable without the log. *)
  (try
     ignore (Congest.Trace.send_events light);
     Alcotest.fail "Light send_events should raise"
   with Invalid_argument _ -> ());
  try
    ignore (Congest.Trace.cut_bits light (Array.map (fun p -> 1 - p) part));
    Alcotest.fail "Light foreign-cut query should raise"
  with Invalid_argument _ -> ()

(* Fault accumulators against a fold over the recorded fault events. *)
let test_streaming_fault_parity () =
  let g = Build.cycle 7 in
  let part = halves 7 in
  let plan =
    Congest.Faults.plan
      ~default:
        (Congest.Faults.link ~drop:0.2 ~duplicate:0.2 ~max_delay:2 ())
      0xfa17
  in
  let config =
    { Congest.Runtime.default_config with Congest.Runtime.faults = Some plan }
  in
  let full = Congest.Trace.create ~cut:part () in
  ignore (Congest.Runtime.run ~config ~trace:full Congest.Algo_luby.mis g);
  let faults = Congest.Trace.fault_events full in
  let sum pred =
    Array.fold_left
      (fun acc (f : Congest.Trace.fault) ->
        if pred f then acc + f.Congest.Trace.bits else acc)
      0 faults
  in
  check_int "dropped_bits"
    (sum (fun f -> f.Congest.Trace.kind = Congest.Trace.Dropped))
    (Congest.Trace.dropped_bits full);
  check_int "duplicated_bits"
    (sum (fun f -> f.Congest.Trace.kind = Congest.Trace.Duplicated))
    (Congest.Trace.duplicated_bits full);
  check_int "corrupted_bits"
    (sum (fun f -> f.Congest.Trace.kind = Congest.Trace.Corrupted))
    (Congest.Trace.corrupted_bits full);
  check_int "total_faults" (Array.length faults)
    (Congest.Trace.total_faults full);
  let crossing (f : Congest.Trace.fault) =
    part.(f.Congest.Trace.src) <> part.(f.Congest.Trace.dst)
  in
  check_int "cut_bits_dropped"
    (sum (fun f -> f.Congest.Trace.kind = Congest.Trace.Dropped && crossing f))
    (Congest.Trace.cut_bits_dropped full part);
  check_int "cut_bits_duplicated"
    (sum
       (fun f -> f.Congest.Trace.kind = Congest.Trace.Duplicated && crossing f))
    (Congest.Trace.cut_bits_duplicated full part);
  check_int "delivered identity"
    (Congest.Trace.cut_bits full part
    - Congest.Trace.cut_bits_dropped full part
    + Congest.Trace.cut_bits_duplicated full part)
    (Congest.Trace.cut_bits_delivered full part);
  (* Same faulty run, Light trace: streamed fault accounting matches. *)
  let light = Congest.Trace.create ~mode:Congest.Trace.Light ~cut:part () in
  ignore (Congest.Runtime.run ~config ~trace:light Congest.Algo_luby.mis g);
  check_int "light dropped_bits" (Congest.Trace.dropped_bits full)
    (Congest.Trace.dropped_bits light);
  check_int "light duplicated_bits"
    (Congest.Trace.duplicated_bits full)
    (Congest.Trace.duplicated_bits light);
  check_int "light total_faults" (Congest.Trace.total_faults full)
    (Congest.Trace.total_faults light);
  check_int "light cut_bits_delivered"
    (Congest.Trace.cut_bits_delivered full part)
    (Congest.Trace.cut_bits_delivered light part)

let () =
  let cells =
    List.concat_map
      (fun (gname, g) ->
        List.map
          (fun (P prog as p) ->
            Alcotest.test_case
              (Printf.sprintf "%s on %s" prog.Congest.Program.name gname)
              `Quick (run_cell gname g p))
          (programs ()))
      (graphs ())
  in
  let streaming_cells =
    let graphs =
      graphs () @ [ ("rand1e4", sparse_random_graph ~seed:0x5eed 10_000) ]
    in
    List.concat_map
      (fun (gname, g) ->
        List.map
          (fun (P prog as p) ->
            Alcotest.test_case
              (Printf.sprintf "streaming %s on %s" prog.Congest.Program.name
                 gname)
              `Quick
              (streaming_parity_cell gname g p))
          (programs ()))
      graphs
  in
  Alcotest.run "golden"
    [
      ("trace-counts", cells);
      ("streaming", streaming_cells);
      ( "streaming-faults",
        [
          Alcotest.test_case "fault accumulators == fold" `Quick
            test_streaming_fault_parity;
        ] );
      ( "blackboard",
        [
          Alcotest.test_case "metric == simulation report" `Quick
            test_blackboard_metric_matches_report;
        ] );
    ]
