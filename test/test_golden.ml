(* Golden-trace regression tests: pinned-seed runs of three CONGEST
   algorithms on three small graphs, asserting the EXACT round, message,
   bit and delivery counts observed through Obs.Metrics snapshot diffs.
   Any change to the runtime's charging rules, the algorithms' send
   patterns, or the metrics plumbing shows up as a diff against the
   table below.

   All runs use Runtime.default_config (seed 42 pinned); Luby's only
   randomness derives from that seed, so every count is deterministic.

   Regenerate the table after an intentional change with

     MAXIS_GOLDEN_PRINT=1 dune exec test/test_golden.exe 2>/dev/null

   and paste the printed rows over [goldens] below. *)

module M = Obs.Metrics
module Build = Wgraph.Build

let check_int = Alcotest.(check int)

type prog = P : 'o Congest.Program.t -> prog

let graphs () =
  [ ("path6", Build.path 6); ("cycle7", Build.cycle 7); ("k5", Build.complete 5) ]

let programs () =
  [
    P (Congest.Algo_flood.max_id ~rounds:4);
    P (Congest.Algo_bfs.distances ~root:0 ~rounds:4);
    P Congest.Algo_luby.mis;
  ]

type counts = { rounds : int; messages : int; bits : int; deliveries : int }

(* Counts for one pinned run, read back through the metrics layer (so
   this also regression-tests the instrumentation itself, not just the
   runtime). *)
let measure (P program) g =
  let algo = program.Congest.Program.name in
  let labels = [ ("algo", algo) ] in
  let before = M.snapshot () in
  ignore (Congest.Runtime.run program g);
  let d = M.diff ~before ~after:(M.snapshot ()) in
  let c name = int_of_float (M.get ~labels d name) in
  ( algo,
    {
      rounds = c "congest_rounds_total";
      messages = c "congest_messages_total";
      bits = c "congest_bits_total";
      deliveries = c "congest_deliveries_total";
    } )

(* (algo, graph) -> exact counts.  Pinned from a run of this file; see
   the header for how to regenerate. *)
let goldens =
  [
    (("max-id-flood", "path6"), { rounds = 4; messages = 31; bits = 93; deliveries = 31 });
    (("bfs-distances", "path6"), { rounds = 4; messages = 7; bits = 21; deliveries = 7 });
    (("luby-mis", "path6"), { rounds = 3; messages = 20; bits = 70; deliveries = 20 });
    (("max-id-flood", "cycle7"), { rounds = 4; messages = 38; bits = 114; deliveries = 38 });
    (("bfs-distances", "cycle7"), { rounds = 4; messages = 14; bits = 42; deliveries = 14 });
    (("luby-mis", "cycle7"), { rounds = 6; messages = 32; bits = 122; deliveries = 32 });
    (("max-id-flood", "k5"), { rounds = 4; messages = 36; bits = 108; deliveries = 36 });
    (("bfs-distances", "k5"), { rounds = 4; messages = 20; bits = 60; deliveries = 20 });
    (("luby-mis", "k5"), { rounds = 3; messages = 40; bits = 140; deliveries = 40 });
  ]

let print_mode = Sys.getenv_opt "MAXIS_GOLDEN_PRINT" = Some "1"

let run_cell gname g p () =
  let algo, c = measure p g in
  if print_mode then
    Printf.printf
      "((%S, %S), { rounds = %d; messages = %d; bits = %d; deliveries = %d });\n"
      algo gname c.rounds c.messages c.bits c.deliveries
  else begin
    let exp =
      match List.assoc_opt (algo, gname) goldens with
      | Some e -> e
      | None -> Alcotest.fail (Printf.sprintf "no golden for (%s, %s)" algo gname)
    in
    check_int "rounds" exp.rounds c.rounds;
    check_int "messages" exp.messages c.messages;
    check_int "bits" exp.bits c.bits;
    check_int "deliveries" exp.deliveries c.deliveries
  end

(* ------------------------------------------------------------------ *)
(* The acceptance invariant of the metrics layer: the blackboard bits
   counter agrees exactly with Core.Simulation's internal accounting
   (Theorem 5's currency) — the meter is not a second, drifting
   implementation. *)

let test_blackboard_metric_matches_report () =
  let p = Maxis_core.Params.make ~alpha:1 ~ell:4 ~players:3 in
  let rng = Stdx.Prng.create 0x601d in
  let x =
    Commcx.Inputs.gen_promise rng ~k:(Maxis_core.Params.k p) ~t:3
      ~intersecting:false
  in
  let inst = Maxis_core.Linear_family.instance p x in
  let program = Congest.Algo_luby.mis in
  let labels = [ ("algo", program.Congest.Program.name) ] in
  let before = M.snapshot () in
  let _, report = Maxis_core.Simulation.simulate program inst in
  let d = M.diff ~before ~after:(M.snapshot ()) in
  check_int "blackboard_bits_total == report.blackboard_bits"
    report.Maxis_core.Simulation.blackboard_bits
    (int_of_float (M.get ~labels d "blackboard_bits_total"));
  check_int "blackboard_writes_total == report.blackboard_writes"
    report.Maxis_core.Simulation.blackboard_writes
    (int_of_float (M.get ~labels d "blackboard_writes_total"));
  check_int "simulation_runs_total bumped" 1
    (int_of_float (M.get ~labels d "simulation_runs_total"));
  (* The per-player split partitions the total exactly. *)
  let per_player =
    List.fold_left
      (fun acc (s : M.sample) ->
        if s.M.name = "blackboard_player_bits_total" then
          acc + int_of_float s.M.value
        else acc)
      0 d
  in
  check_int "per-player bits sum to the total"
    report.Maxis_core.Simulation.blackboard_bits per_player;
  (* And the per-round histogram saw one observation per round with the
     same total sum. *)
  match M.find ~labels d "blackboard_round_bits" with
  | None -> Alcotest.fail "blackboard_round_bits missing"
  | Some s ->
      check_int "one histogram observation per round"
        report.Maxis_core.Simulation.rounds
        (int_of_float s.M.value);
      check_int "histogram sum = blackboard bits"
        report.Maxis_core.Simulation.blackboard_bits
        (int_of_float s.M.sum)

let () =
  let cells =
    List.concat_map
      (fun (gname, g) ->
        List.map
          (fun (P prog as p) ->
            Alcotest.test_case
              (Printf.sprintf "%s on %s" prog.Congest.Program.name gname)
              `Quick (run_cell gname g p))
          (programs ()))
      (graphs ())
  in
  Alcotest.run "golden"
    [
      ("trace-counts", cells);
      ( "blackboard",
        [
          Alcotest.test_case "metric == simulation report" `Quick
            test_blackboard_metric_matches_report;
        ] );
    ]
