(* Tests for the fault-injection layer: plans, the injector, runtime
   integration (drop/duplicate/corrupt/delay/crash), structured failure
   reporting via run_checked, the lazy trace index, and the harden
   reliable-delivery combinator.

   The load-bearing claims, mirrored from docs/FAULTS.md:
   - replay: identical (config.seed, plan) => byte-identical traces;
   - hardened algorithms produce the exact fault-free outputs under
     drop/duplicate/corrupt/delay plans;
   - Theorem 5's T*2|cut|*B cap bounds ATTEMPTED cut traffic even when a
     plan drops part of it, and delivered = attempted - dropped + dup. *)

module Build = Wgraph.Build
module Msg = Congest.Msg
module Program = Congest.Program
module Runtime = Congest.Runtime
module Trace = Congest.Trace
module Faults = Congest.Faults
module Prng = Stdx.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Plans *)

let test_link_validation () =
  check "valid" true (Faults.link ~drop:0.5 () = Faults.link ~drop:0.5 ());
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "drop > 1" true (rejects (fun () -> Faults.link ~drop:1.5 ()));
  check "negative dup" true (rejects (fun () -> Faults.link ~duplicate:(-0.1) ()));
  check "negative delay" true (rejects (fun () -> Faults.link ~max_delay:(-1) ()));
  check "negative crash round" true
    (rejects (fun () -> Faults.plan ~crashes:[ (0, -1) ] 1));
  check "negative crash node" true
    (rejects (fun () -> Faults.plan ~crashes:[ (-2, 0) ] 1))

let test_crash_round () =
  let p = Faults.plan ~crashes:[ (3, 7); (3, 2); (5, 0) ] 1 in
  Alcotest.(check (option int)) "earliest wins" (Some 2)
    (Faults.crash_round p ~node:3);
  Alcotest.(check (option int)) "exact" (Some 0) (Faults.crash_round p ~node:5);
  Alcotest.(check (option int)) "absent" None (Faults.crash_round p ~node:0)

(* ------------------------------------------------------------------ *)
(* Injector decisions *)

let msg8 = Msg.int_msg ~width:8 170 (* 0b10101010 *)

let test_injector_drop_certain () =
  let inj = Faults.injector (Faults.plan ~default:(Faults.link ~drop:1.0 ()) 3) in
  let copies, events = Faults.apply inj ~src:0 ~dst:1 msg8 in
  check_int "no copies" 0 (List.length copies);
  check "dropped event" true (events = [ Trace.Dropped ])

let test_injector_duplicate_certain () =
  let inj =
    Faults.injector (Faults.plan ~default:(Faults.link ~duplicate:1.0 ()) 3)
  in
  let copies, events = Faults.apply inj ~src:0 ~dst:1 msg8 in
  check_int "two copies" 2 (List.length copies);
  check "both intact" true
    (List.for_all (fun (_, (m : Msg.t)) -> m.Msg.payload = msg8.Msg.payload) copies);
  check "duplicated event" true (List.mem Trace.Duplicated events)

let test_injector_corrupt_certain () =
  let inj =
    Faults.injector (Faults.plan ~default:(Faults.link ~corrupt:1.0 ()) 3)
  in
  let copies, events = Faults.apply inj ~src:0 ~dst:1 msg8 in
  (match copies with
  | [ (0, m) ] ->
      check "payload perturbed" true (m.Msg.payload <> msg8.Msg.payload);
      check_int "declared size unchanged" msg8.Msg.bits m.Msg.bits
  | _ -> Alcotest.fail "expected one immediate copy");
  check "corrupted event" true (List.mem Trace.Corrupted events)

let test_injector_delay_bounded () =
  let inj =
    Faults.injector (Faults.plan ~default:(Faults.link ~max_delay:3 ()) 3)
  in
  for _ = 1 to 50 do
    let copies, _ = Faults.apply inj ~src:0 ~dst:1 msg8 in
    List.iter (fun (d, _) -> check "0 <= d <= 3" true (d >= 0 && d <= 3)) copies
  done

let test_injector_per_link_override () =
  let inj =
    Faults.injector
      (Faults.plan
         ~links:[ ((0, 1), Faults.link ~drop:1.0 ()) ]
         42)
  in
  let copies01, _ = Faults.apply inj ~src:0 ~dst:1 msg8 in
  let copies10, _ = Faults.apply inj ~src:1 ~dst:0 msg8 in
  check_int "overridden link drops" 0 (List.length copies01);
  check_int "reverse direction clean" 1 (List.length copies10)

let test_corrupt_msg_kinds () =
  let rng = Prng.create 9 in
  let m = Faults.corrupt_msg rng msg8 in
  check "int flipped" true (m.Msg.payload <> msg8.Msg.payload);
  check_int "bits kept" 8 m.Msg.bits;
  let b = Faults.corrupt_msg rng (Msg.bool_msg true) in
  check "bool negated" true (b.Msg.payload = (Msg.bool_msg false).Msg.payload);
  let u = Faults.corrupt_msg rng Msg.unit_msg in
  check "unit unchanged" true (u.Msg.payload = Msg.unit_msg.Msg.payload)

(* ------------------------------------------------------------------ *)
(* Runtime integration *)

let cfg ?(factor = 4) ?(max_rounds = 10_000) ?(seed = 42) faults =
  { Runtime.default_config with Runtime.bandwidth_factor = factor; max_rounds; seed; faults }

let test_runtime_drop_all_isolates () =
  (* Every message dropped: flooding teaches nobody anything. *)
  let g = Build.path 5 in
  let plan = Faults.plan ~default:(Faults.link ~drop:1.0 ()) 7 in
  let r = Runtime.run ~config:(cfg (Some plan)) (Congest.Algo_flood.max_id ~rounds:5) g in
  Array.iteri
    (fun v o -> Alcotest.(check (option int)) "only own id" (Some v) o)
    r.Runtime.outputs;
  let tr = r.Runtime.trace in
  check "every send dropped" true (Trace.dropped_bits tr = Trace.total_bits tr);
  check "events recorded" true (Trace.total_faults tr = Trace.total_messages tr)

let test_runtime_duplicates_harmless_for_flood () =
  let g = Build.path 5 in
  let plan = Faults.plan ~default:(Faults.link ~duplicate:1.0 ()) 7 in
  let r = Runtime.run ~config:(cfg (Some plan)) (Congest.Algo_flood.max_id ~rounds:5) g in
  Array.iter
    (fun o -> Alcotest.(check (option int)) "max reached" (Some 4) o)
    r.Runtime.outputs;
  let tr = r.Runtime.trace in
  check "duplicated bits = attempted bits" true
    (Trace.duplicated_bits tr = Trace.total_bits tr)

let test_runtime_delay_eventually_delivers () =
  (* Delays defer but never lose: with a generous round budget the flood
     still saturates, and Delayed events appear in the trace. *)
  let g = Build.path 5 in
  let plan = Faults.plan ~default:(Faults.link ~max_delay:2 ()) 5 in
  let r =
    Runtime.run ~config:(cfg (Some plan)) (Congest.Algo_flood.max_id ~rounds:20) g
  in
  Array.iter
    (fun o -> Alcotest.(check (option int)) "max reached" (Some 4) o)
    r.Runtime.outputs;
  let delayed =
    Array.exists
      (fun (f : Trace.fault) -> match f.Trace.kind with Trace.Delayed d -> d > 0 | _ -> false)
      (Trace.fault_events r.Runtime.trace)
  in
  check "some send actually delayed" true delayed;
  check "nothing dropped" true (Trace.dropped_bits r.Runtime.trace = 0)

let test_runtime_crash_stop () =
  (* Path 0-1-2-3, node 1 crashes at round 2: the crash severs the only
     route, so node 0 never learns about node 3. *)
  let g = Build.path 4 in
  let plan = Faults.plan ~crashes:[ (1, 2) ] 7 in
  let r =
    Runtime.run ~config:(cfg (Some plan)) (Congest.Algo_flood.max_id ~rounds:8) g
  in
  check "crashed flag" true r.Runtime.crashed.(1);
  check "others alive" true
    (not (r.Runtime.crashed.(0) || r.Runtime.crashed.(2) || r.Runtime.crashed.(3)));
  check "crash event recorded" true
    (Array.exists
       (fun (f : Trace.fault) ->
         f.Trace.kind = Trace.Crashed && f.Trace.src = 1 && f.Trace.round = 2)
       (Trace.fault_events r.Runtime.trace));
  check "0 never learns 3" true (r.Runtime.outputs.(0) <> Some 3);
  check "run still terminates" true r.Runtime.all_halted

let test_runtime_crash_at_round_zero () =
  let g = Build.path 3 in
  let plan = Faults.plan ~crashes:[ (1, 0) ] 7 in
  let r =
    Runtime.run ~config:(cfg (Some plan)) (Congest.Algo_flood.max_id ~rounds:4) g
  in
  check "crashed immediately" true r.Runtime.crashed.(1);
  (* The crashed node never stepped, so it never sent a bit. *)
  check_int "no bits from node 1" 0
    (Trace.bits_on_edge r.Runtime.trace ~src:1 ~dst:0
    + Trace.bits_on_edge r.Runtime.trace ~src:1 ~dst:2)

let test_replay_determinism () =
  let g = Build.erdos_renyi (Prng.create 31) 12 0.3 in
  let plan =
    Faults.plan
      ~default:(Faults.link ~drop:0.2 ~duplicate:0.1 ~corrupt:0.1 ~max_delay:2 ())
      99
  in
  let once () = Runtime.run ~config:(cfg (Some plan)) Congest.Algo_luby.mis g in
  let r1 = once () and r2 = once () in
  check "same outputs" true (r1.Runtime.outputs = r2.Runtime.outputs);
  check "identical trace digest" true
    (Trace.digest r1.Runtime.trace = Trace.digest r2.Runtime.trace);
  (* A different fault seed must perturb the execution. *)
  let plan' = { plan with Faults.seed = 100 } in
  let r3 = Runtime.run ~config:(cfg (Some plan')) Congest.Algo_luby.mis g in
  check "different fault seed, different trace" true
    (Trace.digest r1.Runtime.trace <> Trace.digest r3.Runtime.trace)

(* ------------------------------------------------------------------ *)
(* run_checked: structured failures *)

let hog_program =
  {
    Program.name = "bandwidth-hog";
    spawn =
      (fun view ->
        let halted = ref false in
        {
          Program.step =
            (fun ~round:_ ~inbox:_ ->
              halted := true;
              match view.Program.neighbors with
              | [||] -> []
              | nbrs -> List.init 50 (fun _ -> (nbrs.(0), Msg.int_msg ~width:8 1)));
          halted = (fun () -> !halted);
          output = (fun () -> None);
        });
  }

let rogue_program =
  {
    Program.name = "rogue";
    spawn =
      (fun view ->
        let halted = ref false in
        {
          Program.step =
            (fun ~round:_ ~inbox:_ ->
              halted := true;
              if view.Program.id = 0 then [ (2, Msg.unit_msg) ] else []);
          halted = (fun () -> !halted);
          output = (fun () -> None);
        });
  }

let test_checked_oversend () =
  match Runtime.run_checked hog_program (Build.path 2) with
  | Ok _ -> Alcotest.fail "oversend not detected"
  | Error { Runtime.round; src; reason; trace_prefix } -> (
      check_int "round" 0 round;
      check "src is an endpoint" true (src = 0 || src = 1);
      match reason with
      | Runtime.Oversend { bits; limit; dst = _ } ->
          check "bits exceed limit" true (bits > limit);
          (* The prefix stops before the violating send. *)
          check "prefix within budget" true
            (Trace.max_bits_per_edge_round trace_prefix <= limit)
      | _ -> Alcotest.fail "wrong reason")

let test_checked_non_neighbor () =
  match Runtime.run_checked rogue_program (Build.path 3) with
  | Ok _ -> Alcotest.fail "illegal recipient not detected"
  | Error { Runtime.round; src; reason; _ } -> (
      check_int "round" 0 round;
      check_int "src" 0 src;
      match reason with
      | Runtime.Non_neighbor { dst } -> check_int "dst" 2 dst
      | _ -> Alcotest.fail "wrong reason")

let test_checked_happy_path () =
  let g = Build.cycle 6 in
  match Runtime.run_checked (Congest.Algo_flood.max_id ~rounds:6) g with
  | Error _ -> Alcotest.fail "clean run reported a failure"
  | Ok r ->
      let plain = Runtime.run (Congest.Algo_flood.max_id ~rounds:6) g in
      check "same as run" true (r.Runtime.outputs = plain.Runtime.outputs)

let test_pp_failure_mentions_context () =
  match Runtime.run_checked rogue_program (Build.path 3) with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error f ->
      let s = Format.asprintf "%a" Runtime.pp_failure f in
      check "mentions round" true (contains s "round");
      check "mentions node 0" true (contains s "0")

(* ------------------------------------------------------------------ *)
(* Lazy trace index (satellite: O(1) repeated queries, correct under
   interleaved mutation) *)

let test_trace_index_interleaved () =
  let tr = Trace.create () in
  Trace.record_send tr ~round:0 ~src:0 ~dst:1 ~bits:3;
  Trace.record_send tr ~round:0 ~src:1 ~dst:0 ~bits:4;
  Trace.record_send tr ~round:2 ~src:0 ~dst:1 ~bits:5;
  (* First query builds the index. *)
  check_int "round 0 bits" 7 (Trace.bits_in_round tr 0);
  check_int "round 1 bits" 0 (Trace.bits_in_round tr 1);
  check_int "round 2 msgs" 1 (Trace.messages_in_round tr 2);
  check_int "edge 0->1" 8 (Trace.bits_on_edge tr ~src:0 ~dst:1);
  (* Mutate after the index exists: it must be invalidated, not stale. *)
  Trace.record_send tr ~round:2 ~src:0 ~dst:1 ~bits:11;
  check_int "edge 0->1 after append" 19 (Trace.bits_on_edge tr ~src:0 ~dst:1);
  check_int "round 2 bits after append" 16 (Trace.bits_in_round tr 2);
  Trace.record_fault tr ~round:3 ~src:0 ~dst:1 ~bits:11 ~kind:Trace.Dropped;
  check_int "rounds cover fault rounds" 4 (Trace.rounds tr);
  check_int "dropped" 11 (Trace.dropped_bits tr);
  (* Out-of-range queries are total. *)
  check_int "negative round" 0 (Trace.bits_in_round tr (-1));
  check_int "beyond last round" 0 (Trace.bits_in_round tr 50);
  check_int "unknown edge" 0 (Trace.bits_on_edge tr ~src:5 ~dst:6)

let test_trace_index_matches_fold () =
  (* Random traffic: the indexed queries must agree with a direct fold. *)
  let rng = Prng.create 17 in
  let tr = Trace.create () in
  let sends = ref [] in
  for _ = 1 to 500 do
    let round = Prng.int rng 20
    and src = Prng.int rng 8
    and dst = Prng.int rng 8
    and bits = 1 + Prng.int rng 12 in
    Trace.record_send tr ~round ~src ~dst ~bits;
    sends := (round, src, dst, bits) :: !sends
  done;
  let fold_bits r =
    List.fold_left
      (fun acc (r', _, _, b) -> if r' = r then acc + b else acc)
      0 !sends
  and fold_edge s d =
    List.fold_left
      (fun acc (_, s', d', b) -> if s' = s && d' = d then acc + b else acc)
      0 !sends
  in
  for r = 0 to 19 do
    check_int (Printf.sprintf "round %d" r) (fold_bits r) (Trace.bits_in_round tr r)
  done;
  for s = 0 to 7 do
    for d = 0 to 7 do
      check_int "edge" (fold_edge s d) (Trace.bits_on_edge tr ~src:s ~dst:d)
    done
  done

let test_trace_delivered_identity () =
  let tr = Trace.create () in
  let part = [| 0; 1 |] in
  Trace.record_send tr ~round:0 ~src:0 ~dst:1 ~bits:10;
  Trace.record_send tr ~round:0 ~src:1 ~dst:0 ~bits:20;
  Trace.record_fault tr ~round:0 ~src:0 ~dst:1 ~bits:10 ~kind:Trace.Dropped;
  Trace.record_fault tr ~round:0 ~src:1 ~dst:0 ~bits:20 ~kind:Trace.Duplicated;
  check_int "attempted" 30 (Trace.cut_bits tr part);
  check_int "dropped" 10 (Trace.cut_bits_dropped tr part);
  check_int "duplicated" 20 (Trace.cut_bits_duplicated tr part);
  check_int "delivered = attempted - dropped + dup" 40
    (Trace.cut_bits_delivered tr part)

(* ------------------------------------------------------------------ *)
(* harden: reliable delivery *)

(* id_width(16) = 4, so factor 64 gives 256 >= 131 bits for hardened
   frames. *)
let harden_graph () = Build.erdos_renyi (Prng.create 23) 16 0.35
let harden_cfg faults = cfg ~factor:64 ~max_rounds:800 faults

let chaos_plan seed =
  Faults.plan
    ~default:(Faults.link ~drop:0.2 ~duplicate:0.1 ~corrupt:0.1 ~max_delay:2 ())
    seed

let check_harden_equiv : type o. o Program.t -> Faults.plan option -> unit =
 fun program plan ->
  let g = harden_graph () in
  let base = Runtime.run ~config:(harden_cfg None) program g in
  let hard = Runtime.run ~config:(harden_cfg plan) (Faults.harden program) g in
  check "hardened halted" true hard.Runtime.all_halted;
  check "outputs equal fault-free" true (hard.Runtime.outputs = base.Runtime.outputs)

let test_harden_no_fault_equiv () =
  check_harden_equiv (Congest.Algo_flood.max_id ~rounds:8) None;
  check_harden_equiv (Congest.Algo_bfs.distances ~root:0 ~rounds:8) None;
  check_harden_equiv Congest.Algo_luby.mis None

let test_harden_drop_equiv () =
  let plan = Some (Faults.plan ~default:(Faults.link ~drop:0.2 ()) 5) in
  check_harden_equiv (Congest.Algo_flood.max_id ~rounds:8) plan;
  check_harden_equiv (Congest.Algo_bfs.distances ~root:0 ~rounds:8) plan;
  check_harden_equiv Congest.Algo_luby.mis plan

let test_harden_chaos_equiv () =
  check_harden_equiv (Congest.Algo_bfs.distances ~root:0 ~rounds:8)
    (Some (chaos_plan 6));
  check_harden_equiv Congest.Algo_luby.mis (Some (chaos_plan 7))

let test_harden_corruption_detected () =
  (* Heavy corruption alone: checksums catch every flip, retransmission
     repairs, outputs stay exact. *)
  let plan = Some (Faults.plan ~default:(Faults.link ~corrupt:0.3 ()) 8) in
  check_harden_equiv (Congest.Algo_flood.max_id ~rounds:8) plan

let test_harden_costs_more_bits () =
  let g = harden_graph () in
  let program = Congest.Algo_luby.mis in
  let base = Runtime.run ~config:(harden_cfg None) program g in
  let hard = Runtime.run ~config:(harden_cfg None) (Faults.harden program) g in
  check "reliability costs bits" true
    (Trace.total_bits hard.Runtime.trace > Trace.total_bits base.Runtime.trace);
  check "and rounds" true
    (hard.Runtime.rounds_executed > base.Runtime.rounds_executed)

let test_harden_replay () =
  let g = harden_graph () in
  let run () =
    Runtime.run
      ~config:(harden_cfg (Some (chaos_plan 13)))
      (Faults.harden Congest.Algo_luby.mis)
      g
  in
  let r1 = run () and r2 = run () in
  check "hardened replay digest" true
    (Trace.digest r1.Runtime.trace = Trace.digest r2.Runtime.trace)

let test_harden_combined_dup_corrupt () =
  (* Duplication and corruption composed on every link (plus delay):
     checksums catch the flips, sequence numbers discard the copies, and
     outputs stay exactly fault-free. *)
  let plan =
    Some
      (Faults.plan
         ~default:(Faults.link ~duplicate:0.2 ~corrupt:0.2 ~max_delay:2 ())
         17)
  in
  check_harden_equiv (Congest.Algo_flood.max_id ~rounds:8) plan;
  check_harden_equiv Congest.Algo_luby.mis plan

let test_harden_combined_with_crash () =
  (* duplicate + corrupt + a crash mid-retransmit.  harden masks message
     faults, not crash faults: a dead peer stalls its neighbors'
     stop-and-wait, so the run may only end at max_rounds and outputs
     need not match the fault-free run.  What must still hold: the crash
     is recorded, the message faults actually fired, the run terminates,
     and the whole thing replays bit-identically. *)
  let g = harden_graph () in
  let plan =
    Faults.plan
      ~default:(Faults.link ~duplicate:0.2 ~corrupt:0.2 ())
      ~crashes:[ (3, 2) ]
      29
  in
  let run () =
    Runtime.run
      ~config:(harden_cfg (Some plan))
      (Faults.harden Congest.Algo_luby.mis)
      g
  in
  let r1 = run () in
  check "crashed flag" true r1.Runtime.crashed.(3);
  let kinds =
    Array.map
      (fun (f : Trace.fault) -> f.Trace.kind)
      (Trace.fault_events r1.Runtime.trace)
  in
  let has k = Array.exists (fun k' -> k' = k) kinds in
  check "duplication fired" true (has Trace.Duplicated);
  check "corruption fired" true (has Trace.Corrupted);
  check "crash recorded" true (has Trace.Crashed);
  check "run terminates" true (r1.Runtime.rounds_executed <= 800);
  let r2 = run () in
  check "replay digest" true
    (Trace.digest r1.Runtime.trace = Trace.digest r2.Runtime.trace);
  check "replay outputs" true (r1.Runtime.outputs = r2.Runtime.outputs)

(* ------------------------------------------------------------------ *)
(* Simulation metering under faults + the fault-free referee guard *)

let lf_instance () =
  let p = Maxis_core.Params.make ~alpha:1 ~ell:4 ~players:3 in
  let rng = Prng.create 3 in
  let x =
    Commcx.Inputs.gen_promise rng ~k:(Maxis_core.Params.k p)
      ~t:p.Maxis_core.Params.players ~intersecting:true
  in
  Maxis_core.Linear_family.instance p x

let test_simulation_attempted_bound_under_faults () =
  let inst = lf_instance () in
  let plan = Faults.plan ~default:(Faults.link ~drop:0.15 ~duplicate:0.05 ()) 21 in
  let config = cfg (Some plan) in
  match Maxis_core.Simulation.simulate_checked ~config Congest.Algo_luby.mis inst with
  | Error f ->
      Alcotest.failf "unexpected failure: %a" Runtime.pp_failure f
  | Ok (result, r) ->
      check "faults actually fired" true (r.Maxis_core.Simulation.faults_injected > 0);
      (* Theorem 5's cap bounds attempted traffic, drops notwithstanding. *)
      check "attempted within T*2cut*B" true r.Maxis_core.Simulation.within_bound;
      let tr = result.Runtime.trace in
      let part = inst.Maxis_core.Family.partition in
      check_int "delivered identity"
        (Trace.cut_bits tr part
        - Trace.cut_bits_dropped tr part
        + Trace.cut_bits_duplicated tr part)
        r.Maxis_core.Simulation.blackboard_bits_delivered;
      check "report mirrors trace" true
        (r.Maxis_core.Simulation.blackboard_bits_dropped
        = Trace.cut_bits_dropped tr part)

let test_player_sim_rejects_faults () =
  let inst = lf_instance () in
  let config = cfg (Some (Faults.plan ~default:(Faults.link ~drop:0.1 ()) 2)) in
  check "referee refuses fault plans" true
    (try
       ignore (Maxis_core.Player_sim.run ~config Congest.Algo_luby.mis inst);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "link validation" `Quick test_link_validation;
          Alcotest.test_case "crash round" `Quick test_crash_round;
        ] );
      ( "injector",
        [
          Alcotest.test_case "drop certain" `Quick test_injector_drop_certain;
          Alcotest.test_case "duplicate certain" `Quick test_injector_duplicate_certain;
          Alcotest.test_case "corrupt certain" `Quick test_injector_corrupt_certain;
          Alcotest.test_case "delay bounded" `Quick test_injector_delay_bounded;
          Alcotest.test_case "per-link override" `Quick test_injector_per_link_override;
          Alcotest.test_case "corrupt_msg kinds" `Quick test_corrupt_msg_kinds;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "drop-all isolates" `Quick test_runtime_drop_all_isolates;
          Alcotest.test_case "duplicates harmless" `Quick test_runtime_duplicates_harmless_for_flood;
          Alcotest.test_case "delay delivers" `Quick test_runtime_delay_eventually_delivers;
          Alcotest.test_case "crash stop" `Quick test_runtime_crash_stop;
          Alcotest.test_case "crash at round 0" `Quick test_runtime_crash_at_round_zero;
          Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
        ] );
      ( "run-checked",
        [
          Alcotest.test_case "oversend" `Quick test_checked_oversend;
          Alcotest.test_case "non-neighbor" `Quick test_checked_non_neighbor;
          Alcotest.test_case "happy path" `Quick test_checked_happy_path;
          Alcotest.test_case "pp context" `Quick test_pp_failure_mentions_context;
        ] );
      ( "trace-index",
        [
          Alcotest.test_case "interleaved mutation" `Quick test_trace_index_interleaved;
          Alcotest.test_case "matches direct fold" `Quick test_trace_index_matches_fold;
          Alcotest.test_case "delivered identity" `Quick test_trace_delivered_identity;
        ] );
      ( "harden",
        [
          Alcotest.test_case "no-fault equivalence" `Quick test_harden_no_fault_equiv;
          Alcotest.test_case "drop equivalence" `Quick test_harden_drop_equiv;
          Alcotest.test_case "chaos equivalence" `Quick test_harden_chaos_equiv;
          Alcotest.test_case "corruption detected" `Quick test_harden_corruption_detected;
          Alcotest.test_case "costs more bits" `Quick test_harden_costs_more_bits;
          Alcotest.test_case "hardened replay" `Quick test_harden_replay;
          Alcotest.test_case "combined dup+corrupt" `Quick
            test_harden_combined_dup_corrupt;
          Alcotest.test_case "combined with crash" `Quick
            test_harden_combined_with_crash;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "attempted bound under faults" `Quick
            test_simulation_attempted_bound_under_faults;
          Alcotest.test_case "referee rejects faults" `Quick
            test_player_sim_rejects_faults;
        ] );
    ]
