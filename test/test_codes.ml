(* Tests for the coding substrate: GF(p), polynomials, Reed-Solomon,
   code mappings, parameter selection. *)

module Gf = Codes.Gf
module Poly = Codes.Poly
module RS = Codes.Reed_solomon
module CM = Codes.Code_mapping
module CP = Codes.Code_params

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* GF(p) *)

let test_gf_requires_prime () =
  Alcotest.check_raises "composite" (Invalid_argument "Gf.make: 6 is not prime")
    (fun () -> ignore (Gf.make 6));
  ignore (Gf.make 2);
  ignore (Gf.make 97)

let test_gf_arithmetic () =
  let f = Gf.make 7 in
  check_int "add" 2 (Gf.add f 5 4);
  check_int "sub" 6 (Gf.sub f 2 3);
  check_int "mul" 6 (Gf.mul f 4 5);
  check_int "neg" 4 (Gf.neg f 3);
  check_int "of_int negative" 5 (Gf.of_int f (-2));
  check_int "pow" 1 (Gf.pow f 3 6);
  check_int "pow 0" 1 (Gf.pow f 5 0)

let test_gf_inverse () =
  let f = Gf.make 11 in
  for a = 1 to 10 do
    check_int (Printf.sprintf "inv %d" a) 1 (Gf.mul f a (Gf.inv f a))
  done;
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Gf.inv f 0));
  check_int "div" 4 (Gf.div f 8 2)

let test_gf_field_axioms_small () =
  (* Exhaustive associativity/distributivity over GF(5). *)
  let f = Gf.make 5 in
  for a = 0 to 4 do
    for b = 0 to 4 do
      for c = 0 to 4 do
        check "assoc add" true (Gf.add f (Gf.add f a b) c = Gf.add f a (Gf.add f b c));
        check "assoc mul" true (Gf.mul f (Gf.mul f a b) c = Gf.mul f a (Gf.mul f b c));
        check "distrib" true
          (Gf.mul f a (Gf.add f b c) = Gf.add f (Gf.mul f a b) (Gf.mul f a c))
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Poly *)

let test_poly_eval () =
  let f = Gf.make 7 in
  (* p(x) = 3 + 2x + x^2 *)
  let p = [| 3; 2; 1 |] in
  check_int "p(0)" 3 (Poly.eval f p 0);
  check_int "p(1)" 6 (Poly.eval f p 1);
  check_int "p(2)" (11 mod 7) (Poly.eval f p 2);
  check_int "degree" 2 (Poly.degree f p);
  check_int "degree of zero" (-1) (Poly.degree f [| 0; 0 |]);
  check_int "degree trailing zeros" 1 (Poly.degree f [| 1; 2; 0; 7 |])

let test_poly_ops () =
  let f = Gf.make 5 in
  let a = [| 1; 2 |] and b = [| 3; 4; 1 |] in
  check "add" true (Poly.equal f (Poly.add f a b) [| 4; 1; 1 |]);
  check "sub roundtrip" true (Poly.equal f (Poly.sub f (Poly.add f a b) b) a);
  (* (1+2x)(3+4x+x^2) = 3 + 10x + 9x^2 + 2x^3 = 3 + 0x + 4x^2 + 2x^3 mod 5 *)
  check "mul" true (Poly.equal f (Poly.mul f a b) [| 3; 0; 4; 2 |]);
  check "scale" true (Poly.equal f (Poly.scale f 2 a) [| 2; 4 |])

let test_poly_roots () =
  let f = Gf.make 5 in
  (* (x-1)(x-2) = x^2 - 3x + 2 = 2 + 2x + x^2 mod 5 *)
  Alcotest.(check (list int)) "roots" [ 1; 2 ] (Poly.roots f [| 2; 2; 1 |])

let test_poly_root_count_bound () =
  (* A nonzero polynomial of degree d over GF(p) has at most d roots — the
     fact the RS distance proof rests on. *)
  let f = Gf.make 11 in
  let rng = Stdx.Prng.create 4 in
  for _ = 1 to 50 do
    let d = 1 + Stdx.Prng.int rng 4 in
    let p = Array.init (d + 1) (fun i -> if i = d then 1 + Stdx.Prng.int rng 10 else Stdx.Prng.int rng 11) in
    check "root bound" true (List.length (Poly.roots f p) <= d)
  done

let test_poly_interpolate () =
  let f = Gf.make 7 in
  let pts = [ (0, 3); (1, 6); (2, 4) ] in
  let p = Poly.interpolate f pts in
  List.iter (fun (x, y) -> check_int (Printf.sprintf "p(%d)" x) y (Poly.eval f p x)) pts;
  check "degree < points" true (Poly.degree f p < 3);
  Alcotest.check_raises "dup x" (Invalid_argument "Poly.interpolate: duplicate x values")
    (fun () -> ignore (Poly.interpolate f [ (1, 2); (1, 3) ]))

let prop_interpolate_eval_roundtrip =
  QCheck.Test.make ~name:"interpolation reproduces polynomial" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Stdx.Prng.create seed in
      let f = Gf.make 13 in
      let deg = Stdx.Prng.int rng 5 in
      let p = Array.init (deg + 1) (fun _ -> Stdx.Prng.int rng 13) in
      let pts = List.init (deg + 2) (fun x -> (x, Poly.eval f p x)) in
      let q = Poly.interpolate f pts in
      Poly.equal f p q || Poly.degree f p < 0 && Poly.degree f q < 0)

(* ------------------------------------------------------------------ *)
(* Reed-Solomon *)

let test_rs_params_checked () =
  Alcotest.check_raises "m > p" (Invalid_argument "Reed_solomon.make: need 1 <= l <= m <= p")
    (fun () -> ignore (RS.make ~p:5 ~l:2 ~m:6));
  Alcotest.check_raises "l > m" (Invalid_argument "Reed_solomon.make: need 1 <= l <= m <= p")
    (fun () -> ignore (RS.make ~p:7 ~l:4 ~m:3));
  Alcotest.check_raises "p not prime" (Invalid_argument "Reed_solomon.make: p must be prime")
    (fun () -> ignore (RS.make ~p:9 ~l:1 ~m:3))

let test_rs_encode_shape () =
  let c = RS.make ~p:7 ~l:2 ~m:5 in
  check_int "l" 2 c.CM.l;
  check_int "m" 5 c.CM.m;
  check_int "d" 4 c.CM.d;
  check_int "q" 7 c.CM.q;
  let w = c.CM.encode [| 3; 1 |] in
  check_int "codeword length" 5 (Array.length w);
  (* message (3,1) is 3 + x: evaluations 3,4,5,6,0 mod 7 *)
  Alcotest.(check (array int)) "evaluations" [| 3; 4; 5; 6; 0 |] w

let test_rs_distance_exhaustive () =
  (* All pairs of messages over a small code: distance >= m - l + 1. *)
  let c = RS.make ~p:5 ~l:2 ~m:4 in
  (match CM.verify c with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* also check the sharper d = m - l + 1 on a sample *)
  let w1 = CM.encode_index c 0 and w2 = CM.encode_index c 1 in
  check "distance >= 3" true (CM.distance w1 w2 >= 3)

let test_rs_figure_code () =
  (* The figures' parameters: alpha=1, ell=2 -> code (1, 3, 2, Sigma) over
     GF(3).  Verify all pairs exhaustively. *)
  let c = RS.make ~p:3 ~l:1 ~m:3 in
  (match CM.verify c with Ok () -> () | Error e -> Alcotest.fail e);
  check_int "messages" 3 (CM.message_count c)

let test_rs_decode_roundtrip () =
  let c = RS.make ~p:11 ~l:3 ~m:7 in
  for i = 0 to 30 do
    let msg = CM.message_of_index c (i * 37 mod CM.message_count c) in
    let w = c.CM.encode msg in
    match RS.decode_unique ~p:11 ~l:3 w with
    | Some msg' -> Alcotest.(check (array int)) "roundtrip" msg msg'
    | None -> Alcotest.fail "decode failed on valid codeword"
  done

let test_rs_decode_rejects_corrupt () =
  let c = RS.make ~p:11 ~l:2 ~m:8 in
  let w = CM.encode_index c 5 in
  w.(7) <- (w.(7) + 1) mod 11;
  check "corrupt rejected" true (RS.decode_unique ~p:11 ~l:2 w = None)

let test_rs_bad_message () =
  let c = RS.make ~p:5 ~l:2 ~m:4 in
  Alcotest.check_raises "bad length"
    (Invalid_argument "Reed_solomon.encode: bad message length") (fun () ->
      ignore (c.CM.encode [| 1 |]));
  Alcotest.check_raises "symbol range"
    (Invalid_argument "Reed_solomon.encode: symbol out of alphabet") (fun () ->
      ignore (c.CM.encode [| 1; 9 |]))

let prop_rs_distance_sampled =
  QCheck.Test.make ~name:"RS distance >= d on random pairs" ~count:100
    QCheck.(pair small_int small_int) (fun (i, j) ->
      let c = RS.make ~p:13 ~l:3 ~m:9 in
      let total = CM.message_count c in
      let i = i mod total and j = j mod total in
      i = j
      || CM.distance (CM.encode_index c i) (CM.encode_index c j) >= c.CM.d)

(* ------------------------------------------------------------------ *)
(* Code_mapping generics *)

let test_distance_function () =
  check_int "zero" 0 (CM.distance [| 1; 2 |] [| 1; 2 |]);
  check_int "all" 2 (CM.distance [| 1; 2 |] [| 2; 1 |]);
  Alcotest.check_raises "length" (Invalid_argument "Code_mapping.distance: length mismatch")
    (fun () -> ignore (CM.distance [| 1 |] [| 1; 2 |]))

let test_message_indexing () =
  let c = RS.make ~p:5 ~l:2 ~m:4 in
  Alcotest.(check (array int)) "index 0" [| 0; 0 |] (CM.message_of_index c 0);
  Alcotest.(check (array int)) "index 1" [| 1; 0 |] (CM.message_of_index c 1);
  Alcotest.(check (array int)) "index 5" [| 0; 1 |] (CM.message_of_index c 5);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Code_mapping.message_of_index: 25 out of [0,25)")
    (fun () -> ignore (CM.message_of_index c 25))

let test_repetition_negative_control () =
  (* The repetition mapping is a *bad* code: it records only the weak
     distance ceil(m/l), and the verifier confirms it fails the RS-level
     requirement when asked for more. *)
  let c = CM.repetition ~q:4 ~l:2 ~m:6 in
  check_int "weak d" 3 c.CM.d;
  (match CM.verify c with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("repetition fails its own (weak) d: " ^ e));
  (* Now lie about the distance and watch verification fail. *)
  let liar = { c with CM.d = 6 } in
  check "verifier catches liar" true (match CM.verify liar with Error _ -> true | Ok () -> false)

(* ------------------------------------------------------------------ *)
(* Code_params *)

let test_code_params_figure () =
  let p = CP.make ~alpha:1 ~ell:2 in
  check_int "k" 3 p.CP.k;
  check_int "positions" 3 p.CP.positions;
  check_int "q" 3 p.CP.q;
  check "exact alphabet" true (CP.exact_alphabet p);
  (* codewords pairwise distance >= ell *)
  for m1 = 0 to 2 do
    for m2 = m1 + 1 to 2 do
      check "distance" true
        (CM.distance (CP.codeword p m1) (CP.codeword p m2) >= p.CP.ell)
    done
  done

let test_code_params_padded_alphabet () =
  (* ell=4, alpha=2: positions=6, q=7 (padded). *)
  let p = CP.make ~alpha:2 ~ell:4 in
  check_int "positions" 6 p.CP.positions;
  check_int "q" 7 p.CP.q;
  check "padded" false (CP.exact_alphabet p);
  check_int "k" 36 p.CP.k;
  (* symbols stay within [0, q) *)
  for m = 0 to p.CP.k - 1 do
    Array.iter (fun s -> check "symbol range" true (s >= 0 && s < p.CP.q)) (CP.codeword p m)
  done

let test_code_params_validation () =
  Alcotest.check_raises "alpha 0" (Invalid_argument "Code_params.make: alpha must be >= 1")
    (fun () -> ignore (CP.make ~alpha:0 ~ell:2));
  Alcotest.check_raises "ell 0" (Invalid_argument "Code_params.make: ell must be >= 1")
    (fun () -> ignore (CP.make ~alpha:1 ~ell:0));
  Alcotest.check_raises "codeword range"
    (Invalid_argument "Code_params.codeword: 3 out of [0,3)") (fun () ->
      ignore (CP.codeword (CP.make ~alpha:1 ~ell:2) 3))

let test_paper_regime () =
  let p = CP.paper_regime ~k:256 in
  (* log k = 8, log log k = 3 -> alpha ~ 8/3 ~ 3, ell ~ 8 - 8/3 ~ 5 *)
  check "alpha sane" true (p.CP.alpha >= 1 && p.CP.alpha <= 4);
  check "ell sane" true (p.CP.ell >= 3);
  check "k realized" true (p.CP.k = Stdx.Mathx.pow p.CP.positions p.CP.alpha)

let prop_code_params_distance =
  QCheck.Test.make ~name:"code params distance >= ell (sampled)" ~count:30
    QCheck.(pair small_int small_int) (fun (e, a) ->
      let ell = 1 + (e mod 6) and alpha = 1 + (a mod 2) in
      let p = CP.make ~alpha ~ell in
      let rng = Stdx.Prng.create (e + (100 * a)) in
      let ok = ref true in
      for _ = 1 to 20 do
        let m1 = Stdx.Prng.int rng p.CP.k and m2 = Stdx.Prng.int rng p.CP.k in
        if m1 <> m2 then
          if CM.distance (CP.codeword p m1) (CP.codeword p m2) < ell then
            ok := false
      done;
      !ok)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "codes"
    [
      ( "gf",
        [
          Alcotest.test_case "requires prime" `Quick test_gf_requires_prime;
          Alcotest.test_case "arithmetic" `Quick test_gf_arithmetic;
          Alcotest.test_case "inverse" `Quick test_gf_inverse;
          Alcotest.test_case "field axioms GF(5)" `Quick test_gf_field_axioms_small;
        ] );
      ( "poly",
        [
          Alcotest.test_case "eval/degree" `Quick test_poly_eval;
          Alcotest.test_case "ops" `Quick test_poly_ops;
          Alcotest.test_case "roots" `Quick test_poly_roots;
          Alcotest.test_case "root count bound" `Quick test_poly_root_count_bound;
          Alcotest.test_case "interpolate" `Quick test_poly_interpolate;
        ] );
      qsuite "poly-props" [ prop_interpolate_eval_roundtrip ];
      ( "reed-solomon",
        [
          Alcotest.test_case "params checked" `Quick test_rs_params_checked;
          Alcotest.test_case "encode shape" `Quick test_rs_encode_shape;
          Alcotest.test_case "distance exhaustive" `Quick test_rs_distance_exhaustive;
          Alcotest.test_case "figure code" `Quick test_rs_figure_code;
          Alcotest.test_case "decode roundtrip" `Quick test_rs_decode_roundtrip;
          Alcotest.test_case "decode rejects corrupt" `Quick test_rs_decode_rejects_corrupt;
          Alcotest.test_case "bad message" `Quick test_rs_bad_message;
        ] );
      qsuite "rs-props" [ prop_rs_distance_sampled ];
      ( "code-mapping",
        [
          Alcotest.test_case "distance" `Quick test_distance_function;
          Alcotest.test_case "message indexing" `Quick test_message_indexing;
          Alcotest.test_case "repetition negative control" `Quick
            test_repetition_negative_control;
        ] );
      ( "code-params",
        [
          Alcotest.test_case "figure parameters" `Quick test_code_params_figure;
          Alcotest.test_case "padded alphabet" `Quick test_code_params_padded_alphabet;
          Alcotest.test_case "validation" `Quick test_code_params_validation;
          Alcotest.test_case "paper regime" `Quick test_paper_regime;
        ] );
      qsuite "code-params-props" [ prop_code_params_distance ];
    ]
