(* Tests for the ablations, the convergecast algorithm, and minimum-weight
   vertex cover — the extension modules beyond the paper's core. *)

module P = Maxis_core.Params
module A = Maxis_core.Ablations
module Graph = Wgraph.Graph
module Build = Wgraph.Build
module Runtime = Congest.Runtime
module Bitset = Stdx.Bitset
module Prng = Stdx.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Code ablation *)

let test_rs_analysis_clean () =
  let r = A.analyze A.Reed_solomon ~alpha:2 ~ell:6 in
  check "property2" true r.A.property2_holds;
  check "claim2" true r.A.claim2_holds;
  (* RS at these parameters: d = positions - alpha + 1 = 7 *)
  check_int "min distance" 7 r.A.min_pairwise_distance;
  check_int "matching = distance" 7 r.A.worst_matching

let test_repetition_breaks () =
  let r = A.analyze A.Repetition ~alpha:2 ~ell:6 in
  check "property2 fails" false r.A.property2_holds;
  check "claim2 overrun" false r.A.claim2_holds;
  check "distance below ell" true (r.A.min_pairwise_distance < 6);
  (* the family still has *some* gap, just a weaker one *)
  check "weaker gap ratio" true
    (r.A.gap_ratio > (A.analyze A.Reed_solomon ~alpha:2 ~ell:6).A.gap_ratio)

let test_repetition_marginal_at_small_ell () =
  (* At ell = 4 the overrun does not yet materialize (bound has +1 slack),
     but Property 2 already fails — the first crack. *)
  let r = A.analyze A.Repetition ~alpha:2 ~ell:4 in
  check "property2 fails" false r.A.property2_holds;
  check "claim2 still (marginally) holds" true r.A.claim2_holds

let test_params_with_code_same_layout () =
  let rs = A.params_with_code A.Reed_solomon ~alpha:2 ~ell:4 ~players:2 in
  let rep = A.params_with_code A.Repetition ~alpha:2 ~ell:4 ~players:2 in
  check_int "same k" (P.k rs) (P.k rep);
  check_int "same q" (P.q rs) (P.q rep);
  check_int "same n" (Maxis_core.Linear_family.n_nodes rs)
    (Maxis_core.Linear_family.n_nodes rep)

let test_matching_equals_distance () =
  (* In the fixed construction, the (Code^i_m1, Code^j_m2) matching equals
     the codeword Hamming distance exactly (edges exist only within a
     position). *)
  let p = P.make ~alpha:2 ~ell:3 ~players:2 in
  for m1 = 0 to 5 do
    for m2 = m1 + 1 to 6 do
      let d =
        Codes.Code_mapping.distance (P.codeword p m1) (P.codeword p m2)
      in
      let r = Maxis_core.Properties.property2 p ~i:0 ~j:1 ~m1 ~m2 in
      check_int "matching = distance" d r.Maxis_core.Properties.measured
    done
  done

let test_bandwidth_ablation_monotone () =
  let p = P.make ~alpha:1 ~ell:4 ~players:2 in
  let reports = A.bandwidth_report ~factors:[ 1; 2; 4 ] p ~intersecting:false ~seed:1 in
  check_int "three rows" 3 (List.length reports);
  let bounds =
    List.map (fun (_, (r : Maxis_core.Simulation.report)) -> r.Maxis_core.Simulation.bound_bits) reports
  in
  (match bounds with
  | [ a; b; c ] ->
      check "cap scales" true (a < b && b < c);
      check_int "linear scaling" (2 * a) b
  | _ -> Alcotest.fail "expected three bounds");
  List.iter
    (fun (_, (r : Maxis_core.Simulation.report)) ->
      check "within" true r.Maxis_core.Simulation.within_bound)
    reports

(* ------------------------------------------------------------------ *)
(* Convergecast *)

let value_width = 20

(* The aggregate needs value_width + 2 bits per message; on tiny test
   graphs ceil(log n) is 1-2 bits, so give the runtime a budget that fits
   (the mli documents the constraint). *)
let cv_config = { Runtime.default_config with Runtime.bandwidth_factor = 32 }

let run_sum ?(root = 0) g =
  let result =
    Runtime.run ~config:cv_config
      (Congest.Algo_convergecast.sum_of_weights ~root ~value_width)
      g
  in
  (result, result.Runtime.outputs.(root))

let test_convergecast_path () =
  let g = Build.path 7 in
  Graph.set_weight g 3 10;
  let result, total = run_sum g in
  check "halted" true result.Runtime.all_halted;
  Alcotest.(check (option int)) "sum" (Some (6 + 10)) total

let test_convergecast_star_and_clique () =
  let g = Build.star 9 in
  let _, total = run_sum g in
  Alcotest.(check (option int)) "star" (Some 9) total;
  let k = Build.complete 8 in
  Graph.set_weight k 5 3;
  let _, total = run_sum ~root:2 k in
  Alcotest.(check (option int)) "clique" (Some 10) total

let test_convergecast_single_node () =
  let g = Graph.create 1 in
  Graph.set_weight g 0 7;
  let _, total = run_sum g in
  Alcotest.(check (option int)) "lonely root" (Some 7) total

let test_convergecast_count () =
  let g = Build.cycle 11 in
  let result =
    Runtime.run ~config:cv_config
      (Congest.Algo_convergecast.count_nodes ~root:4 ~value_width)
      g
  in
  Alcotest.(check (option int)) "count" (Some 11) result.Runtime.outputs.(4)

let test_convergecast_rounds_linear_in_depth () =
  let g = Build.path 20 in
  let result, _ = run_sum g in
  (* wave down (19) + children settle (2) + values up (19) + slack *)
  check "O(D) rounds" true (result.Runtime.rounds_executed <= 45)

let test_convergecast_non_root_outputs_nothing () =
  let g = Build.path 4 in
  let result, _ = run_sum g in
  for v = 1 to 3 do
    check "silent" true (result.Runtime.outputs.(v) = None)
  done

let prop_convergecast_random_connected =
  QCheck.Test.make ~name:"convergecast sums weights on random graphs" ~count:25
    QCheck.(pair small_int small_int) (fun (seed, nn) ->
      let n = 2 + (nn mod 15) in
      let rng = Prng.create seed in
      let g = Build.erdos_renyi rng n 0.4 in
      Build.random_weights rng g 5;
      (not (Wgraph.Metrics.is_connected g))
      ||
      let _, total = run_sum g in
      total = Some (Graph.total_weight g))

let test_convergecast_max_weight () =
  let g = Build.path 9 in
  Graph.set_weight g 6 42;
  let result =
    Runtime.run ~config:cv_config
      (Congest.Algo_convergecast.max_weight ~root:2 ~value_width)
      g
  in
  Alcotest.(check (option int)) "max" (Some 42) result.Runtime.outputs.(2)

let test_convergecast_aggregate_custom () =
  (* Bitwise-or of (1 << (id mod 8)) flags: the root learns which residues
     appear — a commutative, associative fold over the component. *)
  let g = Build.cycle 10 in
  let program =
    Congest.Algo_convergecast.aggregate ~name:"flag-or" ~root:0 ~value_width
      ~combine:( lor )
      ~contribution:(fun view -> 1 lsl (view.Congest.Program.id mod 8))
  in
  let result = Runtime.run ~config:cv_config program g in
  Alcotest.(check (option int)) "all 8 residues" (Some 255) result.Runtime.outputs.(0)

(* ------------------------------------------------------------------ *)
(* The (Δ+1)-approximation guarantee of the distributed weighted greedy —
   the upper bound the paper contrasts its lower bounds with. *)

let greedy_mis_weight g =
  let result = Runtime.run Congest.Algo_greedy_mis.mis g in
  let s = Bitset.create (Graph.n g) in
  Array.iteri
    (fun v o -> if o = Some true then Bitset.add s v)
    result.Runtime.outputs;
  Graph.set_weight_of g s

let test_greedy_delta_guarantee_random () =
  let rng = Prng.create 91 in
  for _ = 1 to 10 do
    let g = Build.erdos_renyi rng 18 0.3 in
    Build.random_weights rng g 6;
    let opt = Mis.Exact.opt g in
    let got = greedy_mis_weight g in
    let delta = Graph.max_degree g in
    check
      (Printf.sprintf "greedy %d >= opt %d / (delta %d + 1)" got opt delta)
      true
      (got * (delta + 1) >= opt)
  done

let test_greedy_delta_guarantee_hard_instance () =
  let p = P.make ~alpha:1 ~ell:4 ~players:3 in
  let rng = Prng.create 93 in
  let x = Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:3 ~intersecting:true in
  let inst = Maxis_core.Linear_family.instance p x in
  let g = inst.Maxis_core.Family.graph in
  let opt = Mis.Exact.opt g in
  let got = greedy_mis_weight g in
  check "guarantee" true (got * (Graph.max_degree g + 1) >= opt);
  check "never above OPT" true (got <= opt)
(* (On sparse intersecting instances heavy-first greedy can even hit OPT —
   the lower bound is about deciding the gap in the worst case, not about
   any particular instance being hard for any particular heuristic.) *)

(* ------------------------------------------------------------------ *)
(* Unweighted family as a first-class spec *)

let test_unweighted_spec_condition2 () =
  let p = P.make ~alpha:1 ~ell:4 ~players:2 in
  let spec = Maxis_core.Unweighted.spec_linear p in
  let rng = Prng.create 95 in
  List.iter
    (fun intersecting ->
      let x = Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:2 ~intersecting in
      let r = Maxis_core.Family.check_condition2 spec x in
      check "condition 2 on unweighted instances" true r.Maxis_core.Family.ok;
      (* instances really are unweighted *)
      let inst = spec.Maxis_core.Family.build x in
      check_int "all unit weights"
        (Graph.n inst.Maxis_core.Family.graph)
        (Graph.total_weight inst.Maxis_core.Family.graph))
    [ true; false ]

let test_unweighted_spec_simulation () =
  let p = P.make ~alpha:1 ~ell:4 ~players:2 in
  let spec = Maxis_core.Unweighted.spec_linear p in
  let rng = Prng.create 97 in
  let x = Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:2 ~intersecting:true in
  let inst = spec.Maxis_core.Family.build x in
  let d =
    Maxis_core.Simulation.decide_disjointness inst
      ~predicate:spec.Maxis_core.Family.predicate
  in
  Alcotest.(check (option bool)) "decides" (Some false) d.Maxis_core.Simulation.answer;
  check "within bound" true d.Maxis_core.Simulation.report.Maxis_core.Simulation.within_bound

(* ------------------------------------------------------------------ *)
(* Vertex cover *)

let test_vc_exact_known () =
  (* Star: cover = center (weight 1). *)
  let g = Build.star 6 in
  let w, cover = Mis.Vertex_cover.exact g in
  check_int "star cover weight" 1 w;
  check "valid" true (Mis.Vertex_cover.is_cover g cover);
  (* C5: cover size 3 *)
  check_int "C5" 3 (fst (Mis.Vertex_cover.exact (Build.cycle 5)));
  (* edgeless: empty cover... complement of all nodes *)
  check_int "edgeless" 0 (fst (Mis.Vertex_cover.exact (Graph.create 4)))

let test_vc_weighted () =
  (* Heavy center star: cover = the 5 leaves (weight 5) beats center 100. *)
  let g = Build.star 6 in
  Graph.set_weight g 0 100;
  let w, cover = Mis.Vertex_cover.exact g in
  check_int "leaves" 5 w;
  check "center out" false (Bitset.mem cover 0)

let test_vc_local_ratio_valid_and_2approx () =
  let rng = Prng.create 77 in
  for _ = 1 to 20 do
    let g = Build.erdos_renyi rng 16 0.3 in
    Build.random_weights rng g 6;
    let opt, _ = Mis.Vertex_cover.exact g in
    let approx, cover = Mis.Vertex_cover.local_ratio_2approx g in
    check "valid cover" true (Mis.Vertex_cover.is_cover g cover);
    check "at least opt" true (approx >= opt);
    check
      (Printf.sprintf "2-approx (%d <= 2*%d)" approx opt)
      true
      (approx <= 2 * opt)
  done

let test_vc_duality () =
  let rng = Prng.create 79 in
  for _ = 1 to 10 do
    let g = Build.erdos_renyi rng 14 0.4 in
    Build.random_weights rng g 4;
    check "duality" true (Mis.Vertex_cover.duality_check g)
  done

let prop_vc_matches_brute =
  QCheck.Test.make ~name:"MVC = total - brute-force MaxIS" ~count:60
    QCheck.(pair small_int small_int) (fun (seed, nn) ->
      let n = 2 + (nn mod 12) in
      let rng = Prng.create seed in
      let g = Build.erdos_renyi rng n 0.35 in
      Build.random_weights rng g 4;
      let mvc, _ = Mis.Vertex_cover.exact g in
      mvc = Graph.total_weight g - fst (Mis.Brute.solve g))

let test_vc_on_hard_instance () =
  (* The MVC of a hard instance relates to its MaxIS through the same
     duality the paper's MVC discussion uses. *)
  let p = P.make ~alpha:1 ~ell:4 ~players:2 in
  let rng = Prng.create 81 in
  let x = Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:2 ~intersecting:true in
  let inst = Maxis_core.Linear_family.instance p x in
  let g = inst.Maxis_core.Family.graph in
  let mvc, cover = Mis.Vertex_cover.exact g in
  check "valid" true (Mis.Vertex_cover.is_cover g cover);
  check_int "duality" (Graph.total_weight g) (mvc + Mis.Exact.opt g)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ablations-extensions"
    [
      ( "code-ablation",
        [
          Alcotest.test_case "RS clean" `Quick test_rs_analysis_clean;
          Alcotest.test_case "repetition breaks" `Quick test_repetition_breaks;
          Alcotest.test_case "marginal at small ell" `Quick
            test_repetition_marginal_at_small_ell;
          Alcotest.test_case "same layout" `Quick test_params_with_code_same_layout;
          Alcotest.test_case "matching = distance" `Quick test_matching_equals_distance;
          Alcotest.test_case "bandwidth ablation" `Quick test_bandwidth_ablation_monotone;
        ] );
      ( "convergecast",
        [
          Alcotest.test_case "path" `Quick test_convergecast_path;
          Alcotest.test_case "star/clique" `Quick test_convergecast_star_and_clique;
          Alcotest.test_case "single node" `Quick test_convergecast_single_node;
          Alcotest.test_case "count" `Quick test_convergecast_count;
          Alcotest.test_case "rounds O(D)" `Quick test_convergecast_rounds_linear_in_depth;
          Alcotest.test_case "non-root silent" `Quick test_convergecast_non_root_outputs_nothing;
        ] );
      ( "convergecast-extended",
        [
          Alcotest.test_case "max weight" `Quick test_convergecast_max_weight;
          Alcotest.test_case "custom monoid" `Quick test_convergecast_aggregate_custom;
        ] );
      qsuite "convergecast-props" [ prop_convergecast_random_connected ];
      ( "delta-guarantee",
        [
          Alcotest.test_case "random graphs" `Quick test_greedy_delta_guarantee_random;
          Alcotest.test_case "hard instance" `Quick
            test_greedy_delta_guarantee_hard_instance;
        ] );
      ( "unweighted-spec",
        [
          Alcotest.test_case "condition 2" `Quick test_unweighted_spec_condition2;
          Alcotest.test_case "simulation" `Quick test_unweighted_spec_simulation;
        ] );
      ( "vertex-cover",
        [
          Alcotest.test_case "exact known" `Quick test_vc_exact_known;
          Alcotest.test_case "weighted" `Quick test_vc_weighted;
          Alcotest.test_case "local-ratio 2-approx" `Quick
            test_vc_local_ratio_valid_and_2approx;
          Alcotest.test_case "duality" `Quick test_vc_duality;
          Alcotest.test_case "hard instance" `Quick test_vc_on_hard_instance;
        ] );
      qsuite "vertex-cover-props" [ prop_vc_matches_brute ];
    ]
