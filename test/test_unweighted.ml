(* Tests for Remark 1's unweighted transformation. *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module U = Maxis_core.Unweighted
module Family = Maxis_core.Family
module Graph = Wgraph.Graph
module Bitset = Stdx.Bitset
module Prng = Stdx.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let p2 = P.make ~alpha:1 ~ell:4 ~players:2

let instance seed ~intersecting =
  let rng = Prng.create seed in
  let x = Commcx.Inputs.gen_promise rng ~k:(P.k p2) ~t:2 ~intersecting in
  LF.instance p2 x

(* ------------------------------------------------------------------ *)

let test_transform_sizes () =
  (* A weight-5 node becomes 5 clones; unit nodes stay single. *)
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.set_weight g 1 5;
  let t = U.transform g [| 0; 0; 1 |] in
  check_int "n" 7 (Graph.n t.U.graph);
  check_int "clones of 1" 5 (Array.length t.U.clones.(1));
  check_int "clones of 0" 1 (Array.length t.U.clones.(0));
  check_int "inflation" 7 (U.inflation g);
  (* all weights 1 *)
  check_int "unweighted" (Graph.n t.U.graph) (Graph.total_weight t.U.graph)

let test_transform_edges () =
  (* unit-heavy edge -> star onto all clones; heavy-heavy -> biclique;
     clone set internally edgeless. *)
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.set_weight g 1 3;
  Graph.set_weight g 2 2;
  let t = U.transform g [| 0; 0; 0 |] in
  let c0 = t.U.clones.(0).(0) in
  Array.iter
    (fun c1 -> check "0 to every clone of 1" true (Graph.has_edge t.U.graph c0 c1))
    t.U.clones.(1);
  Array.iter
    (fun c1 ->
      Array.iter
        (fun c2 -> check "biclique 1x2" true (Graph.has_edge t.U.graph c1 c2))
        t.U.clones.(2))
    t.U.clones.(1);
  (* clone sets are independent *)
  check "I(1) edgeless" false
    (Graph.has_edge t.U.graph t.U.clones.(1).(0) t.U.clones.(1).(1));
  (* no 0-2 edges (none in the original) *)
  Array.iter
    (fun c2 -> check "no spurious edge" false (Graph.has_edge t.U.graph c0 c2))
    t.U.clones.(2)

let test_transform_rejects_zero_weight () =
  let g = Graph.create 1 in
  Graph.set_weight g 0 0;
  Alcotest.check_raises "zero" (Invalid_argument "Unweighted.transform: zero-weight node")
    (fun () -> ignore (U.transform g [| 0 |]))

let test_opt_preserved_small () =
  (* Weighted path 1 - 10 - 1: OPT 10; transformed: OPT 10. *)
  let g = Wgraph.Build.path 3 in
  Graph.set_weight g 1 10;
  let t = U.transform g [| 0; 0; 0 |] in
  check_int "opt preserved" (Mis.Exact.opt g) (Mis.Exact.opt t.U.graph)

let test_opt_preserved_on_instances () =
  List.iter
    (fun inter ->
      let inst = instance 3 ~intersecting:inter in
      let t = U.transform_instance inst in
      check_int
        (Printf.sprintf "opt preserved (inter=%b)" inter)
        (Mis.Exact.opt inst.Family.graph)
        (Mis.Exact.opt t.U.graph))
    [ true; false ]

let test_gap_preserved () =
  (* The same gap predicate classifies the transformed instances. *)
  let pred = LF.predicate p2 in
  let hi = instance 5 ~intersecting:true in
  let lo = instance 5 ~intersecting:false in
  let opt_hi = Mis.Exact.opt (U.transform_instance hi).U.graph in
  let opt_lo = Mis.Exact.opt (U.transform_instance lo).U.graph in
  check "high side" true (Maxis_core.Predicate.classify pred opt_hi = `High);
  check "low side" true (Maxis_core.Predicate.classify pred opt_lo = `Low)

let test_partition_inherited () =
  let inst = instance 7 ~intersecting:true in
  let t = U.transform_instance inst in
  Array.iteri
    (fun c orig ->
      check_int "owner" inst.Family.partition.(orig) t.U.partition.(c))
    t.U.origin

let test_inflation_factor () =
  (* n' = Theta(k * ell) on intersecting instances: total weight counts
     every heavy node at ell. *)
  let inst = instance 9 ~intersecting:true in
  let g = inst.Family.graph in
  let t = U.transform_instance inst in
  check_int "n' = total weight" (Graph.total_weight g) (Graph.n t.U.graph);
  check "strictly larger" true (Graph.n t.U.graph > Graph.n g)

let test_lift_project_roundtrip () =
  let inst = instance 11 ~intersecting:false in
  let t = U.transform_instance inst in
  let sol = Mis.Exact.solve inst.Family.graph in
  let lifted = U.lift_set t sol.Mis.Exact.set in
  check "lift independent" true (Wgraph.Check.is_independent t.U.graph lifted);
  check_int "lift weight = set cardinality" (sol.Mis.Exact.weight) (Bitset.cardinal lifted);
  let back = U.project_set t lifted in
  check "roundtrip" true (Bitset.equal back sol.Mis.Exact.set)

let prop_opt_preserved_random_graphs =
  QCheck.Test.make ~name:"transform preserves OPT on random weighted graphs"
    ~count:40 QCheck.(pair small_int small_int) (fun (seed, nn) ->
      let n = 2 + (nn mod 8) in
      let rng = Prng.create seed in
      let g = Wgraph.Build.erdos_renyi rng n 0.4 in
      Wgraph.Build.random_weights rng g 3;
      let t = U.transform g (Array.make n 0) in
      Graph.n t.U.graph > 24
      || Mis.Exact.opt g = fst (Mis.Brute.solve t.U.graph))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "unweighted"
    [
      ( "transform",
        [
          Alcotest.test_case "sizes" `Quick test_transform_sizes;
          Alcotest.test_case "edges" `Quick test_transform_edges;
          Alcotest.test_case "zero weight" `Quick test_transform_rejects_zero_weight;
          Alcotest.test_case "partition inherited" `Quick test_partition_inherited;
          Alcotest.test_case "inflation" `Quick test_inflation_factor;
        ] );
      ( "opt-preservation",
        [
          Alcotest.test_case "small" `Quick test_opt_preserved_small;
          Alcotest.test_case "instances" `Quick test_opt_preserved_on_instances;
          Alcotest.test_case "gap preserved" `Quick test_gap_preserved;
          Alcotest.test_case "lift/project" `Quick test_lift_project_roundtrip;
        ] );
      qsuite "transform-props" [ prop_opt_preserved_random_graphs ];
    ]
