(* Network chaos: Stdx.Netio plan/injector semantics (validation, replay
   determinism, short-read/torn-write bounds), the client's clean-EOF vs
   torn-mid-frame distinction, connection-lifecycle hardening in the
   daemon (slow-loris, read-deadline and idle eviction, max_conns
   shedding, slow-writer eviction under injected write stalls), fault
   absorption by a chaos client against a live daemon, and the
   balancer's failover + circuit-breaker state machine. *)

module J = Stdx.Jsonx
module Netio = Stdx.Netio
module Proto = Serve.Proto
module Client = Serve.Client
module Daemon = Serve.Daemon
module Balancer = Serve.Balancer

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "maxis-netchaos-test-%d-%d.sock" (Unix.getpid ()) !n)

(* Injected EPIPE/reset on raw test sockets must cost an exception, not
   the test process. *)
let () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let counter_value name reason =
  Obs.Metrics.value
    (Obs.Metrics.counter ~labels:[ ("reason", reason) ] name)

let evictions reason = counter_value "serve_evictions_total" reason

(* ------------------------------------------------------------------ *)
(* Stdx.Netio: plans and injectors *)

let test_op_fault_validation () =
  let bad f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "probability out of [0,1] accepted"
  in
  bad (fun () -> Netio.op_fault ~eintr:1.5 ());
  bad (fun () -> Netio.op_fault ~short_read:(-0.1) ());
  bad (fun () -> Netio.op_fault ~stall:Float.nan ());
  ignore (Netio.op_fault ~eintr:0.0 ~torn_write:1.0 ())

(* Run a scripted read sequence — all bytes pre-written, writer closed,
   so the op sequence is a pure function of the fault stream, which is a
   pure function of the seed.  Returns (fault kinds in order, bytes
   reassembled). *)
let scripted_read_episode seed =
  let payload = String.init 257 (fun i -> Char.chr (i mod 251)) in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec write_all off =
    if off < String.length payload then
      write_all (off + Unix.write_substring a payload off (String.length payload - off))
  in
  write_all 0;
  Unix.close a;
  let plan =
    Netio.plan
      ~overrides:
        [ ("read", Netio.op_fault ~eintr:0.2 ~stall:0.1 ~short_read:0.6 ()) ]
      seed
  in
  let inj = Netio.injector plan in
  let faults = ref [] in
  let net = Netio.faulty ~on_fault:(fun k -> faults := k :: !faults) inj in
  let buf = Bytes.create 64 in
  let out = Buffer.create 257 in
  let eof = ref false in
  while not !eof do
    match net.Netio.read b buf 0 (Bytes.length buf) with
    | 0 -> eof := true
    | n -> Buffer.add_subbytes out buf 0 n
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()  (* absorbed; the bytes are still buffered in the kernel *)
  done;
  Unix.close b;
  (List.rev !faults, Buffer.contents out, Netio.faults_injected inj)

let test_replay_determinism () =
  let f1, bytes1, counts1 = scripted_read_episode 42 in
  let f2, bytes2, counts2 = scripted_read_episode 42 in
  let f3, _, _ = scripted_read_episode 43 in
  check "same seed, same fault sequence" true (f1 = f2);
  check "same seed, same fault counts" true (counts1 = counts2);
  check "faults actually fired" true (f1 <> []);
  check "different seed, different fault sequence" true (f1 <> f3);
  let payload = String.init 257 (fun i -> Char.chr (i mod 251)) in
  check_string "reassembly survives faults" payload bytes1;
  check_string "reassembly survives faults (replay)" payload bytes2

let test_short_and_torn_bounds () =
  (* With certainty-1 truncation every op still makes >= 1 byte of
     progress, so loops terminate and the transfer completes intact. *)
  let payload = String.init 300 (fun i -> Char.chr (255 - (i mod 256))) in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let inj =
    Netio.injector
      (Netio.plan
         ~overrides:
           [
             ("write", Netio.op_fault ~torn_write:1.0 ());
             ("read", Netio.op_fault ~short_read:1.0 ());
           ]
         7)
  in
  let net = Netio.faulty inj in
  let writes = ref 0 in
  let rec write_all off =
    if off < String.length payload then begin
      let w = net.Netio.write a payload off (String.length payload - off) in
      incr writes;
      check "torn write still progresses" true (w >= 1);
      write_all (off + w)
    end
  in
  write_all 0;
  Unix.close a;
  check "writes were torn" true (!writes > 1);
  let buf = Bytes.create 64 in
  let out = Buffer.create 300 in
  let eof = ref false in
  while not !eof do
    match net.Netio.read b buf 0 (Bytes.length buf) with
    | 0 -> eof := true
    | n ->
        check "short read in bounds" true (n >= 1 && n <= Bytes.length buf);
        Buffer.add_subbytes out buf 0 n
  done;
  Unix.close b;
  check_string "transfer intact" payload (Buffer.contents out);
  check_int "torn_write metered" !writes
    (match List.assoc_opt "torn_write" (Netio.faults_injected inj) with
    | Some c -> c
    | None -> 0)

(* ------------------------------------------------------------------ *)
(* Client: clean EOF vs torn mid-frame (raw in-test server) *)

let with_raw_server body f =
  (* A listening socket whose "daemon" is the [body] callback on the
     accepted fd — for scripting disconnects the real daemon never
     produces. *)
  let sock = fresh_sock () in
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX sock);
  Unix.listen srv 8;
  let t =
    Domain.spawn (fun () ->
        let fd, _ = Unix.accept srv in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> body fd))
  in
  Fun.protect
    ~finally:(fun () ->
      Domain.join t;
      (try Unix.close srv with Unix.Unix_error _ -> ());
      try Sys.remove sock with Sys_error _ -> ())
    (fun () -> f (Proto.Unix_sock sock))

let net_io_message f =
  match f () with
  | _ -> Alcotest.fail "expected Net_io"
  | exception Exec.Error.Error (Exec.Error.Net_io m) -> m

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_clean_eof_message () =
  with_raw_server
    (fun _fd -> ())  (* accept, say nothing, close: a frame boundary *)
    (fun addr ->
      let c = Client.connect addr in
      let m = net_io_message (fun () -> Client.recv c) in
      check ("clean eof message: " ^ m) true (contains ~needle:"clean eof" m);
      Client.close c)

let test_torn_mid_frame_message () =
  with_raw_server
    (fun fd ->
      (* half a reply line, no newline, then vanish *)
      let s = {|{"id":1,"op":"pi|} in
      ignore (Unix.write_substring fd s 0 (String.length s)))
    (fun addr ->
      let c = Client.connect addr in
      let m = net_io_message (fun () -> Client.recv c) in
      check
        ("torn message: " ^ m)
        true
        (contains ~needle:"torn mid-frame" m);
      check "not labeled clean" false (contains ~needle:"clean eof" m);
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle hardening *)

let with_daemon ?(configure = Fun.id) f =
  let sock = fresh_sock () in
  let cfg =
    configure
      {
        (Daemon.default_config ~listen:(Proto.Unix_sock sock) ()) with
        Daemon.tick_s = 0.01;
      }
  in
  let d = Daemon.create cfg in
  let h = Domain.spawn (fun () -> Daemon.run d) in
  Fun.protect
    ~finally:(fun () ->
      Daemon.stop d;
      Domain.join h)
    (fun () -> f (Proto.Unix_sock sock) d)

let test_slow_loris_is_served () =
  (* One byte per tick is slow but *progressing*: the read deadline is
     per-byte-of-progress, so the request must complete and be answered. *)
  with_daemon
    ~configure:(fun cfg -> { cfg with Daemon.read_deadline_s = 1.0 })
    (fun addr _d ->
      let c = Client.connect addr in
      let line = Proto.encode_request (Proto.ping ~id:(J.Int 77) ()) ^ "\n" in
      String.iter
        (fun ch ->
          Client.send_bytes c (String.make 1 ch);
          Unix.sleepf 0.005)
        line;
      let r = Client.recv c in
      check_string "slow-loris request answered" "ok" (Proto.reply_status r);
      check "id echoed" true (Proto.reply_id r = J.Int 77);
      Client.close c)

let test_stalled_partial_line_evicted () =
  with_daemon
    ~configure:(fun cfg -> { cfg with Daemon.read_deadline_s = 0.15 })
    (fun addr _d ->
      let before = evictions "idle" in
      let c = Client.connect addr in
      Client.send_bytes c {|{"op":"pi|};  (* partial line, then silence *)
      (* The eviction courtesy line is a structured error; after it, EOF. *)
      (match Client.recv c with
      | r ->
          check_string "courtesy reply is an error" "error" (Proto.reply_status r);
          check "reason mentions eviction" true
            (contains ~needle:"evicted"
               (Option.value (Proto.reply_reason r) ~default:""))
      | exception Exec.Error.Error (Exec.Error.Net_io _) -> ());
      check "idle eviction counted" true (evictions "idle" > before);
      Client.close c)

let test_idle_connection_evicted () =
  with_daemon
    ~configure:(fun cfg -> { cfg with Daemon.idle_timeout_s = 0.15 })
    (fun addr _d ->
      let before = evictions "idle" in
      let c = Client.connect addr in
      (* no bytes at all; nothing owed either way *)
      (match Client.recv c with
      | _ -> ()
      | exception Exec.Error.Error (Exec.Error.Net_io _) -> ());
      check "idle eviction counted" true (evictions "idle" > before);
      Client.close c)

let test_max_conns_shed () =
  with_daemon
    ~configure:(fun cfg -> { cfg with Daemon.max_conns = 2 })
    (fun addr _d ->
      let before = evictions "capacity" in
      let c1 = Client.connect addr in
      let c2 = Client.connect addr in
      (* both held connections must be live before the third arrives *)
      check_string "c1 live" "ok" (Proto.reply_status (Client.request c1 (Proto.ping ())));
      check_string "c2 live" "ok" (Proto.reply_status (Client.request c2 (Proto.ping ())));
      let c3 = Client.connect addr in
      (* shedding is structured: an error line, then close — not silence *)
      let r = Client.recv c3 in
      check_string "shed reply is an error" "error" (Proto.reply_status r);
      check "reason names capacity" true
        (contains ~needle:"capacity"
           (Option.value (Proto.reply_reason r) ~default:""));
      check "capacity eviction counted" true (evictions "capacity" > before);
      (* the held connections are unharmed *)
      check_string "c1 survives the flood" "ok"
        (Proto.reply_status (Client.request c1 (Proto.ping ())));
      Client.close c1;
      Client.close c2;
      Client.close c3)

let test_slow_writer_evicted () =
  (* Injected certainty-1 write stalls on the daemon side: replies queue
     but never flush, so the slow-writer watchdog must evict. *)
  let inj =
    Serve.Netio.injector
      (Serve.Netio.plan
         ~overrides:[ ("write", Serve.Netio.op_fault ~stall:1.0 ()) ]
         5)
  in
  with_daemon
    ~configure:(fun cfg ->
      {
        cfg with
        Daemon.netio = Serve.Netio.chaos inj;
        write_deadline_s = 0.15;
        drain_deadline_s = 0.1;
      })
    (fun addr _d ->
      let before = evictions "slow-writer" in
      let c = Client.connect addr in
      Client.send c (Proto.ping ());
      (match Client.recv c with
      | _ -> Alcotest.fail "reply flushed through a stalled writer"
      | exception Exec.Error.Error (Exec.Error.Net_io _) -> ());
      check "slow-writer eviction counted" true
        (evictions "slow-writer" > before);
      check "stalls were injected" true (Serve.Netio.total_injected inj > 0);
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Fault absorption: a chaos client against a live daemon *)

let solve_sp =
  {
    Proto.solve_defaults with
    Proto.ell = 3;
    players = 2;
    seed = 11;
    budget_nodes = Some 200_000;
  }

let test_client_absorbs_faults () =
  with_daemon (fun addr _d ->
      (* reference payloads over a clean connection *)
      let clean = Client.connect addr in
      let reference =
        List.init 6 (fun i ->
            let req =
              if i mod 2 = 0 then Proto.ping ~id:(J.Int i) ()
              else Proto.solve ~id:(J.Int i) solve_sp
            in
            Option.value
              (Proto.reply_payload (Client.request clean req))
              ~default:"")
      in
      Client.close clean;
      (* faults scoped to the stream ops: connect stays clean so the
         dial retry budget is not what this test exercises *)
      let inj =
        Serve.Netio.injector
          (Serve.Netio.plan
             ~overrides:
               [
                 ("read", Serve.Netio.op_fault ~eintr:0.3 ~stall:0.2 ~short_read:0.4 ());
                 ("write", Serve.Netio.op_fault ~eintr:0.3 ~stall:0.2 ~torn_write:0.4 ());
               ]
             2024)
      in
      let c = Client.connect ~netio:(Serve.Netio.chaos inj) addr in
      let chaotic =
        List.init 6 (fun i ->
            let req =
              if i mod 2 = 0 then Proto.ping ~id:(J.Int i) ()
              else Proto.solve ~id:(J.Int i) solve_sp
            in
            let r = Client.request c req in
            check_string "chaos request ok" "ok" (Proto.reply_status r);
            Option.value (Proto.reply_payload r) ~default:"")
      in
      Client.close c;
      check "payload parity under faults" true (chaotic = reference);
      check "faults were injected" true (Serve.Netio.total_injected inj > 0))

(* ------------------------------------------------------------------ *)
(* Balancer *)

let test_balancer_empty_rejected () =
  match Balancer.create [] with
  | _ -> Alcotest.fail "empty endpoint list accepted"
  | exception Invalid_argument _ -> ()

let test_balancer_failover_midrun () =
  let sock1 = fresh_sock () and sock2 = fresh_sock () in
  let addr1 = Proto.Unix_sock sock1 and addr2 = Proto.Unix_sock sock2 in
  let mk addr =
    let d = Daemon.create { (Daemon.default_config ~listen:addr ()) with Daemon.tick_s = 0.01 } in
    (d, Domain.spawn (fun () -> Daemon.run d))
  in
  let d1, h1 = mk addr1 in
  let d2, h2 = mk addr2 in
  let stop (d, h) = Daemon.stop d; Domain.join h in
  Fun.protect
    ~finally:(fun () ->
      stop (d1, h1);
      stop (d2, h2))
    (fun () ->
      let bal = Balancer.create ~connect_retries:2 [ addr1; addr2 ] in
      let ask i =
        let r = Balancer.request bal (Proto.ping ~id:(J.Int i) ()) in
        check_string "balanced ping ok" "ok" (Proto.reply_status r)
      in
      for i = 1 to 4 do ask i done;
      (* kill replica 1 mid-run: every subsequent request must still be
         answered, via failover to replica 2 *)
      stop (d1, h1);
      for i = 5 to 12 do ask i done;
      check "health check sees the dead replica" true
        (List.exists
           (fun (a, ok) -> a = addr1 && not ok)
           (Balancer.check_health bal));
      check "health check sees the live replica" true
        (List.exists (fun (a, ok) -> a = addr2 && ok) (Balancer.check_health bal));
      Balancer.close bal)

let test_breaker_state_machine () =
  let sock = fresh_sock () in
  let addr = Proto.Unix_sock sock in
  let now = ref 0.0 in
  let bal =
    Balancer.create
      ~clock:(fun () -> !now)
      ~cooldown_s:5.0 ~failure_threshold:2 ~connect_retries:1 [ addr ]
  in
  let state () = List.assoc addr (Balancer.states bal) in
  let expect_unavailable () =
    match Balancer.request bal (Proto.ping ()) with
    | _ -> Alcotest.fail "request served with no replica up"
    | exception Exec.Error.Error (Exec.Error.Net_io m) ->
        check ("message names replicas: " ^ m) true
          (contains ~needle:"replica" m)
  in
  check_string "starts closed" "closed" (state ());
  expect_unavailable ();
  check_string "one failure: still closed" "closed" (state ());
  expect_unavailable ();
  check_string "threshold reached: open" "open" (state ());
  (* inside the cooldown, the desperation pass still tries (and fails) *)
  expect_unavailable ();
  check_string "still open" "open" (state ());
  (* replica comes up; past the cooldown the breaker half-opens, the
     probe succeeds, the breaker closes *)
  let d =
    Daemon.create
      { (Daemon.default_config ~listen:addr ()) with Daemon.tick_s = 0.01 }
  in
  let h = Domain.spawn (fun () -> Daemon.run d) in
  Fun.protect
    ~finally:(fun () ->
      Daemon.stop d;
      Domain.join h)
    (fun () ->
      now := 100.0;
      let r = Balancer.request bal (Proto.ping ()) in
      check_string "probe served" "ok" (Proto.reply_status r);
      check_string "recovered: closed" "closed" (state ());
      Balancer.close bal)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "netchaos"
    [
      ( "netio",
        [
          Alcotest.test_case "probability validation" `Quick
            test_op_fault_validation;
          Alcotest.test_case "seeded replay determinism" `Quick
            test_replay_determinism;
          Alcotest.test_case "short/torn bounds + intact transfer" `Quick
            test_short_and_torn_bounds;
        ] );
      ( "client",
        [
          Alcotest.test_case "clean eof message" `Quick test_clean_eof_message;
          Alcotest.test_case "torn mid-frame message" `Quick
            test_torn_mid_frame_message;
          Alcotest.test_case "absorbs injected faults, parity kept" `Quick
            test_client_absorbs_faults;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "slow-loris served" `Quick test_slow_loris_is_served;
          Alcotest.test_case "stalled partial line evicted" `Quick
            test_stalled_partial_line_evicted;
          Alcotest.test_case "idle connection evicted" `Quick
            test_idle_connection_evicted;
          Alcotest.test_case "max_conns shed structurally" `Quick
            test_max_conns_shed;
          Alcotest.test_case "slow writer evicted" `Quick
            test_slow_writer_evicted;
        ] );
      ( "balancer",
        [
          Alcotest.test_case "empty endpoint list rejected" `Quick
            test_balancer_empty_rejected;
          Alcotest.test_case "failover mid-run" `Quick
            test_balancer_failover_midrun;
          Alcotest.test_case "breaker state machine" `Quick
            test_breaker_state_machine;
        ] );
    ]
