(* Tests for the Theorem 5 simulation: any CONGEST run's cross-partition
   traffic is bounded by rounds x cut x bandwidth, and the end-to-end
   reduction decides promise pairwise disjointness. *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module Family = Maxis_core.Family
module Simulation = Maxis_core.Simulation
module Inputs = Commcx.Inputs
module Runtime = Congest.Runtime
module Prng = Stdx.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let p2 = P.make ~alpha:1 ~ell:4 ~players:2
let p3 = P.make ~alpha:1 ~ell:4 ~players:3

let instance seed p ~intersecting =
  let rng = Prng.create seed in
  let x = Inputs.gen_promise rng ~k:(P.k p) ~t:p.P.players ~intersecting in
  (LF.instance p x, x)

(* ------------------------------------------------------------------ *)
(* Generic simulation bounds *)

let test_simulate_flood_within_bound () =
  let inst, _ = instance 3 p3 ~intersecting:true in
  let n = Wgraph.Graph.n inst.Family.graph in
  let _, report = Simulation.simulate (Congest.Algo_flood.max_id ~rounds:n) inst in
  check "within" true report.Simulation.within_bound;
  check_int "cut matches family" (LF.expected_cut_size p3) report.Simulation.cut_size;
  check "some cut traffic" true (report.Simulation.blackboard_bits > 0);
  check "cut traffic < total" true
    (report.Simulation.blackboard_bits <= report.Simulation.total_bits)

let test_simulate_luby_within_bound () =
  let inst, _ = instance 5 p3 ~intersecting:false in
  let _, report = Simulation.simulate Congest.Algo_luby.mis inst in
  check "within" true report.Simulation.within_bound

let test_simulate_gather_within_bound () =
  let inst, _ = instance 7 p2 ~intersecting:true in
  let m = Wgraph.Graph.edge_count inst.Family.graph in
  let result, report =
    Simulation.simulate (Congest.Algo_gather.exact_maxis ~m) inst
  in
  check "halted" true result.Runtime.all_halted;
  check "within" true report.Simulation.within_bound;
  (* gathering everything must push many bits across the cut *)
  check "heavy cut traffic" true (report.Simulation.blackboard_bits > 1000)

let test_report_bound_formula () =
  let inst, _ = instance 11 p2 ~intersecting:false in
  let _, report = Simulation.simulate (Congest.Algo_flood.max_id ~rounds:5) inst in
  check_int "bound = rounds * 2cut * B"
    (report.Simulation.rounds * 2 * report.Simulation.cut_size
   * report.Simulation.bandwidth)
    report.Simulation.bound_bits

(* ------------------------------------------------------------------ *)
(* End-to-end reduction: CONGEST algorithm decides disjointness *)

let test_decide_disjointness_both_sides () =
  List.iter
    (fun intersecting ->
      let inst, x = instance 13 p3 ~intersecting in
      let d =
        Simulation.decide_disjointness inst ~predicate:(LF.predicate p3)
      in
      let expected = Commcx.Functions.promise_pairwise_disjointness x in
      Alcotest.(check (option bool))
        (Printf.sprintf "answer (intersecting=%b)" intersecting)
        (Some expected) d.Simulation.answer;
      check "within bound" true d.Simulation.report.Simulation.within_bound)
    [ true; false ]

let test_decide_disjointness_exhaustive_t2_singletons () =
  (* Full truth table over singleton inputs at t=2. *)
  let p = p2 in
  for a = 0 to P.k p - 1 do
    for b = 0 to min 2 (P.k p - 1) do
      let x = Inputs.of_bit_lists ~k:(P.k p) [ [ a ]; [ b ] ] in
      let inst = LF.instance p x in
      let d = Simulation.decide_disjointness inst ~predicate:(LF.predicate p) in
      Alcotest.(check (option bool))
        (Printf.sprintf "a=%d b=%d" a b)
        (Some (a <> b)) d.Simulation.answer
    done
  done

let test_decide_raises_when_truncated () =
  let inst, _ = instance 17 p2 ~intersecting:true in
  let config = { Runtime.default_config with Runtime.max_rounds = 3 } in
  check "raises" true
    (try
       ignore
         (Simulation.decide_disjointness ~config inst ~predicate:(LF.predicate p2));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* The key asymptotic comparison: blackboard cost vs string length *)

let test_blackboard_bits_exceed_cc_bound () =
  (* Theorem 5's punchline run backwards: since the CC of promise
     disjointness is ~ k/(t log t) bits, any correct simulation must have
     cost at least that.  Our measured T * cut * log n is far above it on
     these tiny instances — consistency, not tightness. *)
  let inst, _ = instance 19 p3 ~intersecting:false in
  let m = Wgraph.Graph.edge_count inst.Family.graph in
  let _, report = Simulation.simulate (Congest.Algo_gather.exact_maxis ~m) inst in
  let cc =
    Commcx.Cc_bounds.eval_bits Commcx.Cc_bounds.promise_pairwise_disjointness
      ~k:(P.k p3) ~t:3
  in
  check "measured >= information bound" true
    (float_of_int report.Simulation.blackboard_bits >= cc)

let test_simulation_on_quadratic_instance () =
  (* Theorem 5 holds for the Section-5 family too: same metering, cut
     unchanged by input edges. *)
  let p = P.make ~alpha:1 ~ell:3 ~players:2 in
  let rng = Prng.create 37 in
  let x =
    Inputs.gen_promise rng
      ~k:(Maxis_core.Quadratic_family.string_length p)
      ~t:2 ~intersecting:true
  in
  let inst = Maxis_core.Quadratic_family.instance p x in
  let m = Wgraph.Graph.edge_count inst.Family.graph in
  List.iter
    (fun run ->
      let report = run () in
      check "within" true report.Simulation.within_bound;
      Alcotest.(check int) "cut"
        (Maxis_core.Quadratic_family.expected_cut_size p)
        report.Simulation.cut_size)
    [
      (fun () -> snd (Simulation.simulate Congest.Algo_luby.mis inst));
      (fun () ->
        snd (Simulation.simulate (Congest.Algo_gather.exact_maxis ~m) inst));
    ]

(* ------------------------------------------------------------------ *)
(* Player_sim: the literal t-player protocol must replay the monolithic
   runtime exactly. *)

module Player_sim = Maxis_core.Player_sim

let test_player_sim_matches_runtime () =
  let inst, _ = instance 23 p3 ~intersecting:true in
  let g = inst.Family.graph in
  let n = Wgraph.Graph.n g in
  let m = Wgraph.Graph.edge_count g in
  let check_program : type o. o Congest.Program.t -> unit =
   fun program ->
    let mono = Runtime.run program g in
    let multi = Player_sim.run program inst in
    check (program.Congest.Program.name ^ " outputs equal") true
      (mono.Runtime.outputs = multi.Player_sim.outputs);
    check_int
      (program.Congest.Program.name ^ " rounds equal")
      mono.Runtime.rounds_executed multi.Player_sim.rounds;
    check_int
      (program.Congest.Program.name ^ " board bits = trace cut bits")
      (Congest.Trace.cut_bits mono.Runtime.trace inst.Family.partition)
      (Commcx.Blackboard.bits_written multi.Player_sim.board);
    check_int
      (program.Congest.Program.name ^ " internal + cross = total")
      (Congest.Trace.total_bits mono.Runtime.trace)
      (multi.Player_sim.internal_bits
      + Commcx.Blackboard.bits_written multi.Player_sim.board)
  in
  check_program (Congest.Algo_flood.max_id ~rounds:n);
  check_program Congest.Algo_luby.mis;
  check_program Congest.Algo_greedy_mis.mis;
  check_program (Congest.Algo_gather.exact_maxis ~m)

let test_player_sim_decides () =
  List.iter
    (fun intersecting ->
      let inst, x = instance 29 p3 ~intersecting in
      let answer, outcome =
        Player_sim.decide_disjointness inst ~predicate:(LF.predicate p3)
      in
      Alcotest.(check (option bool))
        "player protocol answer"
        (Some (Commcx.Functions.promise_pairwise_disjointness x))
        answer;
      check "board non-empty" true
        (Commcx.Blackboard.bits_written outcome.Player_sim.board > 0);
      (* authors are player indices *)
      List.iter
        (fun (author, _) -> check "author in range" true (author >= 0 && author < 3))
        (Commcx.Blackboard.bits_by_author outcome.Player_sim.board))
    [ true; false ]

let test_player_sim_all_players_write () =
  (* On a symmetric instance every player's region borders the others, so
     every player should author some blackboard traffic when gathering. *)
  let inst, _ = instance 31 p3 ~intersecting:false in
  let m = Wgraph.Graph.edge_count inst.Family.graph in
  let outcome = Player_sim.run (Congest.Algo_gather.exact_maxis ~m) inst in
  check_int "three authors" 3
    (List.length (Commcx.Blackboard.bits_by_author outcome.Player_sim.board))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let prop_player_sim_equivalence =
  QCheck.Test.make ~name:"player protocol == monolithic runtime" ~count:6
    QCheck.(pair small_int bool) (fun (seed, inter) ->
      let inst, _ = instance seed p2 ~intersecting:inter in
      let g = inst.Family.graph in
      let mono = Runtime.run Congest.Algo_luby.mis g in
      let multi = Player_sim.run Congest.Algo_luby.mis inst in
      mono.Runtime.outputs = multi.Player_sim.outputs
      && Congest.Trace.cut_bits mono.Runtime.trace inst.Family.partition
         = Commcx.Blackboard.bits_written multi.Player_sim.board)

let prop_all_algorithms_within_bound =
  QCheck.Test.make ~name:"Theorem 5 bound holds for every algorithm/input" ~count:8
    QCheck.(pair small_int bool) (fun (seed, inter) ->
      let inst, _ = instance seed p2 ~intersecting:inter in
      let n = Wgraph.Graph.n inst.Family.graph in
      let m = Wgraph.Graph.edge_count inst.Family.graph in
      let programs =
        [
          (fun () -> snd (Simulation.simulate (Congest.Algo_flood.max_id ~rounds:n) inst));
          (fun () -> snd (Simulation.simulate Congest.Algo_luby.mis inst));
          (fun () -> snd (Simulation.simulate (Congest.Algo_gather.exact_maxis ~m) inst));
        ]
      in
      List.for_all (fun run -> (run ()).Simulation.within_bound) programs)

let () =
  Alcotest.run "simulation"
    [
      ( "bounds",
        [
          Alcotest.test_case "flood" `Quick test_simulate_flood_within_bound;
          Alcotest.test_case "luby" `Quick test_simulate_luby_within_bound;
          Alcotest.test_case "gather" `Quick test_simulate_gather_within_bound;
          Alcotest.test_case "bound formula" `Quick test_report_bound_formula;
          Alcotest.test_case "quadratic instance" `Quick
            test_simulation_on_quadratic_instance;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "decides both sides" `Quick test_decide_disjointness_both_sides;
          Alcotest.test_case "exhaustive t=2 singletons" `Slow
            test_decide_disjointness_exhaustive_t2_singletons;
          Alcotest.test_case "truncation raises" `Quick test_decide_raises_when_truncated;
          Alcotest.test_case "cost exceeds CC bound" `Quick
            test_blackboard_bits_exceed_cc_bound;
        ] );
      ( "player-protocol",
        [
          Alcotest.test_case "matches runtime" `Quick test_player_sim_matches_runtime;
          Alcotest.test_case "decides" `Quick test_player_sim_decides;
          Alcotest.test_case "all players write" `Quick test_player_sim_all_players_write;
        ] );
      qsuite "simulation-props"
        [ prop_all_algorithms_within_bound; prop_player_sim_equivalence ];
    ]
