(* Unit tests for the observability layer: Obs.Metrics (registry,
   interning, snapshot/diff), Obs.Span (nesting, counts, exception
   safety, injectable clock) and Obs.Export (JSONL / Prometheus / table /
   atomic writes).  These run in their own process, so resetting the
   global registry between cases is safe. *)

module M = Obs.Metrics
module S = Obs.Span
module E = Obs.Export

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let fresh () = M.reset ()

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counter_basics () =
  fresh ();
  let c = M.counter "obs_test_basic_total" in
  check_int "starts at zero" 0 (M.value c);
  M.inc c;
  M.add c 41;
  check_int "inc + add" 42 (M.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Obs.Metrics.add: counters are monotone (k < 0)") (fun () ->
      M.add c (-1))

let test_interning () =
  fresh ();
  let a = M.counter ~labels:[ ("x", "1"); ("y", "2") ] "obs_test_intern_total" in
  let b = M.counter ~labels:[ ("y", "2"); ("x", "1") ] "obs_test_intern_total" in
  M.inc a;
  M.inc b;
  check_int "label order does not matter: one cell" 2 (M.value a);
  let other = M.counter ~labels:[ ("x", "other") ] "obs_test_intern_total" in
  check_int "distinct labels, distinct cell" 0 (M.value other)

let test_registration_errors () =
  fresh ();
  Alcotest.check_raises "empty name"
    (Invalid_argument "Obs.Metrics: empty instrument name") (fun () ->
      ignore (M.counter ""));
  Alcotest.check_raises "duplicate label keys"
    (Invalid_argument
       "Obs.Metrics: duplicate label key \"k\" on obs_test_dup_total") (fun () ->
      ignore (M.counter ~labels:[ ("k", "1"); ("k", "2") ] "obs_test_dup_total"))

let test_kind_conflict () =
  fresh ();
  ignore (M.counter "obs_test_kind");
  check "re-registering as gauge rejected" true
    (try
       ignore (M.gauge "obs_test_kind");
       false
     with Invalid_argument _ -> true)

let test_gauge () =
  fresh ();
  let g = M.gauge "obs_test_gauge" in
  M.set g 7;
  M.set g 3;
  check_int "gauge keeps last value" 3 (M.gauge_value g)

let test_histogram_buckets () =
  fresh ();
  let h = M.histogram ~buckets:[| 1.0; 10.0 |] "obs_test_hist" in
  List.iter (M.observe h) [ 0.5; 5.0; 50.0; 1.0 ];
  match M.find (M.snapshot ()) "obs_test_hist" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some s ->
      check_int "observation count" 4 (int_of_float s.M.value);
      Alcotest.(check (float 1e-6)) "sum exact to 1e-6" 56.5 s.M.sum;
      (* Cumulative buckets: le=1 gets {0.5, 1.0}, le=10 adds 5.0, +inf all. *)
      Alcotest.(check (list (pair (float 0.0) int)))
        "cumulative buckets"
        [ (1.0, 2); (10.0, 3); (infinity, 4) ]
        s.M.buckets

let test_histogram_bucket_conflict () =
  fresh ();
  ignore (M.histogram ~buckets:[| 1.0; 2.0 |] "obs_test_hist_conflict");
  check "different buckets rejected" true
    (try
       ignore (M.histogram ~buckets:[| 1.0; 3.0 |] "obs_test_hist_conflict");
       false
     with Invalid_argument _ -> true);
  check "non-increasing buckets rejected" true
    (try
       ignore (M.histogram ~buckets:[| 2.0; 1.0 |] "obs_test_hist_bad");
       false
     with Invalid_argument _ -> true)

let test_snapshot_order () =
  fresh ();
  ignore (M.counter "obs_test_z_total");
  ignore (M.counter "obs_test_a_total");
  ignore (M.counter ~labels:[ ("l", "2") ] "obs_test_m_total");
  ignore (M.counter ~labels:[ ("l", "1") ] "obs_test_m_total");
  let names =
    List.map
      (fun (s : M.sample) -> (s.M.name, s.M.labels))
      (List.filter
         (fun (s : M.sample) ->
           List.mem s.M.name
             [ "obs_test_a_total"; "obs_test_m_total"; "obs_test_z_total" ])
         (M.snapshot ()))
  in
  Alcotest.(check (list (pair string (list (pair string string)))))
    "sorted by (name, labels)"
    [
      ("obs_test_a_total", []);
      ("obs_test_m_total", [ ("l", "1") ]);
      ("obs_test_m_total", [ ("l", "2") ]);
      ("obs_test_z_total", []);
    ]
    names

let test_diff () =
  fresh ();
  let c = M.counter "obs_test_diff_total" in
  let g = M.gauge "obs_test_diff_gauge" in
  let h = M.histogram ~buckets:[| 1.0 |] "obs_test_diff_hist" in
  M.add c 5;
  M.set g 100;
  M.observe h 0.5;
  let before = M.snapshot () in
  M.add c 3;
  M.set g 7;
  M.observe h 2.0;
  let late = M.counter "obs_test_diff_late_total" in
  M.add late 9;
  let d = M.diff ~before ~after:(M.snapshot ()) in
  check_int "counter delta" 3 (int_of_float (M.get d "obs_test_diff_total"));
  check_int "gauge keeps after value" 7
    (int_of_float (M.get d "obs_test_diff_gauge"));
  check_int "absent-from-before counts from zero" 9
    (int_of_float (M.get d "obs_test_diff_late_total"));
  (match M.find d "obs_test_diff_hist" with
  | None -> Alcotest.fail "histogram missing from diff"
  | Some s ->
      check_int "histogram count delta" 1 (int_of_float s.M.value);
      Alcotest.(check (float 1e-6)) "histogram sum delta" 2.0 s.M.sum;
      Alcotest.(check (list (pair (float 0.0) int)))
        "histogram bucket delta"
        [ (1.0, 0); (infinity, 1) ]
        s.M.buckets);
  check "zero-change counters kept" true
    (M.find d "obs_test_diff_total" <> None)

let test_sum_family () =
  fresh ();
  M.add (M.counter ~labels:[ ("algo", "a") ] "obs_test_fam_total") 2;
  M.add (M.counter ~labels:[ ("algo", "b") ] "obs_test_fam_total") 3;
  check_int "sum over labels" 5
    (int_of_float (M.sum_family (M.snapshot ()) "obs_test_fam_total"));
  check_int "get defaults to zero" 0
    (int_of_float (M.get (M.snapshot ()) "obs_test_no_such_total"))

let test_reset () =
  fresh ();
  let c = M.counter "obs_test_reset_total" in
  M.add c 5;
  M.reset ();
  check_int "reset zeroes" 0 (M.value c);
  M.inc c;
  check_int "handle survives reset" 1 (M.value c)

let test_atomic_updates () =
  fresh ();
  let c = M.counter "obs_test_atomic_total" in
  let per = 10_000 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              M.inc c
            done))
  in
  Array.iter Domain.join domains;
  check_int "no lost updates" (4 * per) (M.value c)

(* ------------------------------------------------------------------ *)
(* Spans *)

(* A fake clock makes wall times exact and the tests deterministic. *)
let with_fake_clock f =
  let t = ref 0.0 in
  S.set_clock (fun () -> !t);
  Fun.protect
    ~finally:(fun () ->
      S.set_enabled false;
      S.reset ();
      S.set_clock Sys.time)
    (fun () -> f t)

let test_span_disabled_is_transparent () =
  with_fake_clock (fun _ ->
      S.set_enabled false;
      let r = S.with_span "never" (fun () -> 42) in
      check_int "with_span = f () when disabled" 42 r;
      S.count "ignored" 1;
      check "no tree recorded" true (S.roots () = []))

let test_span_tree () =
  with_fake_clock (fun t ->
      S.set_enabled true;
      S.with_span "outer" (fun () ->
          t := 1.0;
          S.with_span "inner" (fun () ->
              S.count "items" 2;
              S.count "items" 3;
              t := 3.0);
          t := 10.0);
      match S.roots () with
      | [ { S.name = "outer"; wall_s; counts = []; children = [ inner ] } ] ->
          Alcotest.(check (float 1e-9)) "outer wall" 10.0 wall_s;
          check_str "inner name" "inner" inner.S.name;
          Alcotest.(check (float 1e-9)) "inner wall" 2.0 inner.S.wall_s;
          Alcotest.(check (list (pair string int)))
            "counts summed" [ ("items", 5) ] inner.S.counts
      | _ -> Alcotest.fail "unexpected profile tree shape")

let test_span_exception_safety () =
  with_fake_clock (fun t ->
      S.set_enabled true;
      (try
         S.with_span "boom" (fun () ->
             t := 2.0;
             failwith "inner failure")
       with Failure _ -> ());
      match S.roots () with
      | [ { S.name = "boom"; wall_s; _ } ] ->
          Alcotest.(check (float 1e-9)) "span closed on raise" 2.0 wall_s;
          (* The stack unwound: a new span is a root, not a child. *)
          S.with_span "after" (fun () -> ());
          check_int "stack unwound" 2 (List.length (S.roots ()))
      | _ -> Alcotest.fail "span lost on exception")

let test_span_rows_and_pp () =
  with_fake_clock (fun t ->
      S.set_enabled true;
      S.with_span "a" (fun () ->
          S.with_span "b" (fun () ->
              S.count "n" 1;
              t := 0.5));
      let rows = S.to_rows (S.roots ()) in
      Alcotest.(check (list (pair string (list (pair string int)))))
        "slash-joined paths"
        [ ("a", []); ("a/b", [ ("n", 1) ]) ]
        (List.map (fun (p, _, c) -> (p, c)) rows);
      let rendered = Format.asprintf "%a" S.pp (S.roots ()) in
      check "pp mentions both spans" true
        (contains rendered "a" && contains rendered "b"))

(* ------------------------------------------------------------------ *)
(* Export *)

let test_json_escape () =
  check_str "quotes and backslashes" "a\\\"b\\\\c" (E.json_escape "a\"b\\c");
  check_str "newline" "x\\ny" (E.json_escape "x\ny");
  check_str "control char" "\\u0001" (E.json_escape "\x01")

let test_jsonl_format () =
  fresh ();
  M.add (M.counter ~labels:[ ("algo", "t") ] "obs_test_json_total") 3;
  let line =
    List.find
      (fun l -> contains l "obs_test_json")
      (String.split_on_char '\n' (E.jsonl (M.snapshot ())))
  in
  check_str "exact JSONL line"
    "{\"name\":\"obs_test_json_total\",\"labels\":{\"algo\":\"t\"},\"type\":\"counter\",\"value\":3}"
    line

let test_prometheus_format () =
  fresh ();
  M.observe (M.histogram ~buckets:[| 1.0 |] "obs_test_prom_hist") 0.5;
  let out = E.prometheus (M.snapshot ()) in
  check "TYPE line" true (contains out "# TYPE obs_test_prom_hist histogram");
  check "le bucket" true (contains out "obs_test_prom_hist_bucket{le=\"1\"} 1");
  check "+inf bucket" true
    (contains out "obs_test_prom_hist_bucket{le=\"+inf\"} 1");
  check "sum and count" true
    (contains out "obs_test_prom_hist_sum 0.5"
    && contains out "obs_test_prom_hist_count 1")

let test_table_format () =
  fresh ();
  M.add (M.counter "obs_test_table_total") 12;
  let out = E.table (M.snapshot ()) in
  check "table mentions the counter" true (contains out "obs_test_table_total")

let test_write_atomic () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "obs_test_write" in
  let path = Filename.concat (Filename.concat dir "nested") "out.jsonl" in
  E.write path "payload\n";
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check_str "written contents" "payload\n" contents;
  check "no tmp file left behind" false (Sys.file_exists (path ^ ".tmp"));
  E.write path "second\n";
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check_str "overwrite replaces" "second\n" contents

let test_spans_csv () =
  with_fake_clock (fun t ->
      S.set_enabled true;
      S.with_span "root" (fun () ->
          S.with_span "leaf" (fun () ->
              S.count "k" 2;
              t := 0.25));
      check_str "csv rows"
        "phase,wall_s,counts\nroot,0.250000,\nroot/leaf,0.250000,k=2\n"
        (E.spans_csv (S.roots ())))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "interning" `Quick test_interning;
          Alcotest.test_case "registration errors" `Quick test_registration_errors;
          Alcotest.test_case "kind conflict" `Quick test_kind_conflict;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram bucket conflict" `Quick
            test_histogram_bucket_conflict;
          Alcotest.test_case "snapshot order" `Quick test_snapshot_order;
          Alcotest.test_case "diff" `Quick test_diff;
          Alcotest.test_case "sum_family / get" `Quick test_sum_family;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "atomic updates" `Quick test_atomic_updates;
        ] );
      ( "spans",
        [
          Alcotest.test_case "disabled is transparent" `Quick
            test_span_disabled_is_transparent;
          Alcotest.test_case "tree + counts" `Quick test_span_tree;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "rows + pp" `Quick test_span_rows_and_pp;
        ] );
      ( "export",
        [
          Alcotest.test_case "json escape" `Quick test_json_escape;
          Alcotest.test_case "jsonl format" `Quick test_jsonl_format;
          Alcotest.test_case "prometheus format" `Quick test_prometheus_format;
          Alcotest.test_case "table format" `Quick test_table_format;
          Alcotest.test_case "atomic write" `Quick test_write_atomic;
          Alcotest.test_case "spans csv" `Quick test_spans_csv;
        ] );
    ]
