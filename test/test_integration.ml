(* Cross-layer integration tests: the full pipelines a user of the library
   would run, exercised end to end.

   Pipeline A (Theorem 1): inputs -> linear family instance -> exact MaxIS
   -> gap predicate -> disjointness answer; simultaneously, the same
   instance through the CONGEST simulation with blackboard accounting.

   Pipeline B (Theorem 2): the quadratic analogue.

   Pipeline C (Remark 1): unweighted transform of a hard instance, gap
   surviving.

   Pipeline D: CONGEST upper-bound algorithms (Luby, greedy) on hard
   instances — how real algorithms score against OPT. *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module QF = Maxis_core.Quadratic_family
module Family = Maxis_core.Family
module Simulation = Maxis_core.Simulation
module Inputs = Commcx.Inputs
module Runtime = Congest.Runtime
module Graph = Wgraph.Graph
module Bitset = Stdx.Bitset
module Prng = Stdx.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let p2 = P.make ~alpha:1 ~ell:4 ~players:2
let p3 = P.make ~alpha:1 ~ell:4 ~players:3

(* ------------------------------------------------------------------ *)

let test_pipeline_linear_full () =
  let rng = Prng.create 42 in
  for trial = 0 to 3 do
    let intersecting = trial mod 2 = 0 in
    let x = Inputs.gen_promise rng ~k:(P.k p3) ~t:3 ~intersecting in
    let spec = LF.spec p3 in
    (* Condition 2 end to end *)
    let r2 = Family.check_condition2 spec x in
    check "condition 2" true r2.Family.ok;
    (* Condition 1 via a perturbed input *)
    let x' =
      let strings =
        List.init 3 (fun i -> Bitset.copy (Inputs.string_of_player x i))
      in
      let s1 = List.nth strings 1 in
      (* flip a bit of player 1 *)
      if Bitset.mem s1 0 then Bitset.remove s1 0 else Bitset.add s1 0;
      Inputs.make ~k:(P.k p3) strings
    in
    let r1 = Family.check_condition1 spec x x' ~player:1 in
    check "condition 1" true r1.Family.ok;
    (* CONGEST simulation decides the same answer *)
    let inst = spec.Family.build x in
    let d = Simulation.decide_disjointness inst ~predicate:spec.Family.predicate in
    Alcotest.(check (option bool)) "simulation agrees" (Some r2.Family.expected)
      d.Simulation.answer;
    check "within Theorem-5 bound" true d.Simulation.report.Simulation.within_bound
  done

let test_pipeline_quadratic_empirical () =
  (* At test-scale parameters the formal claim bounds don't separate, so
     the integration check is empirical: intersecting OPT > disjoint OPT,
     both sides of Claims 6/7 hold, and the instance structure is sound. *)
  let p = P.make ~alpha:1 ~ell:3 ~players:2 in
  let rng = Prng.create 7 in
  let sl = QF.string_length p in
  let xi = Inputs.gen_promise rng ~k:sl ~t:2 ~intersecting:true in
  let xd = Inputs.gen_promise rng ~k:sl ~t:2 ~intersecting:false in
  let ii = QF.instance p xi and id_ = QF.instance p xd in
  let oi = Mis.Exact.opt ii.Family.graph and od = Mis.Exact.opt id_.Family.graph in
  check "claim 6" true (oi >= QF.high_weight p);
  check "claim 7" true (od <= QF.low_weight p);
  check "empirical gap" true (oi > od);
  check_int "cut fixed" (QF.expected_cut_size p) (Family.cut_size ii)

let test_pipeline_unweighted () =
  let rng = Prng.create 17 in
  let x = Inputs.gen_promise rng ~k:(P.k p2) ~t:2 ~intersecting:true in
  let inst = LF.instance p2 x in
  let t = Maxis_core.Unweighted.transform_instance inst in
  (* The transformed instance classifies the same way. *)
  let pred = LF.predicate p2 in
  let opt_w = Mis.Exact.opt inst.Family.graph in
  let opt_u = Mis.Exact.opt t.Maxis_core.Unweighted.graph in
  check_int "OPT preserved" opt_w opt_u;
  check "classification preserved" true
    (Maxis_core.Predicate.classify pred opt_w
    = Maxis_core.Predicate.classify pred opt_u);
  (* and the unweighted graph is genuinely unweighted *)
  check_int "all unit" (Graph.n t.Maxis_core.Unweighted.graph)
    (Graph.total_weight t.Maxis_core.Unweighted.graph)

let test_congest_algorithms_on_hard_instance () =
  (* Run the paper's "fast upper bound" algorithms on a hard instance and
     verify they produce valid independent sets scoring below OPT (that gap
     being unavoidable is the whole point of the paper). *)
  let rng = Prng.create 23 in
  let x = Inputs.gen_promise rng ~k:(P.k p3) ~t:3 ~intersecting:true in
  let inst = LF.instance p3 x in
  let g = inst.Family.graph in
  let opt = Mis.Exact.opt g in
  let run_and_score program =
    let result = Runtime.run program g in
    let s = Bitset.create (Graph.n g) in
    Array.iteri
      (fun v o -> if o = Some true then Bitset.add s v)
      result.Runtime.outputs;
    check "valid IS" true (Wgraph.Check.is_independent g s);
    Graph.set_weight_of g s
  in
  let luby = run_and_score Congest.Algo_luby.mis in
  let greedy = run_and_score Congest.Algo_greedy_mis.mis in
  check "luby <= opt" true (luby <= opt);
  check "greedy <= opt" true (greedy <= opt);
  check "greedy does something" true (greedy > 0)

let test_hardness_amplification_trend () =
  (* Lemma 2's story: as t grows, the worst-case ratio low/high falls
     towards 1/2 — provided ell >> alpha t^2, the paper's regime (there
     ell ~ log k dwarfs the constant t).  We scale ell = 4t^2. *)
  let ratio t =
    let p = P.make ~alpha:1 ~ell:(4 * t * t) ~players:t in
    float_of_int (LF.low_weight p) /. float_of_int (LF.high_weight p)
  in
  let r2 = ratio 2 and r4 = ratio 4 and r8 = ratio 8 in
  check "decreasing" true (r2 > r4 && r4 > r8);
  check "approaching 1/2" true (r8 < 0.65)

let test_cc_to_rounds_consistency () =
  (* Corollary 1 backwards: measured blackboard bits of a real T-round run
     imply a lower bound on T given the cut — the inferred T must not
     exceed the actual T. *)
  let rng = Prng.create 29 in
  let x = Inputs.gen_promise rng ~k:(P.k p2) ~t:2 ~intersecting:false in
  let inst = LF.instance p2 x in
  let m = Graph.edge_count inst.Family.graph in
  let result, report =
    Simulation.simulate (Congest.Algo_gather.exact_maxis ~m) inst
  in
  let inferred_rounds =
    float_of_int report.Simulation.blackboard_bits
    /. float_of_int (2 * report.Simulation.cut_size * report.Simulation.bandwidth)
  in
  check "inferred <= actual" true
    (inferred_rounds <= float_of_int result.Runtime.rounds_executed +. 1e-9)

let test_full_paper_story_in_one () =
  (* One assertion chaining every theorem-level artifact at k=5, t=3. *)
  let p = p3 in
  (* 1. The code exists and has the right distance. *)
  (match Codes.Code_mapping.verify p.P.cp.Codes.Code_params.code with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* 2. Properties hold. *)
  List.iter
    (fun (r : Maxis_core.Properties.result) ->
      check r.Maxis_core.Properties.name true r.Maxis_core.Properties.holds)
    (Maxis_core.Properties.check_all_property1 p);
  (* 3. The family satisfies Definition 4 on a sampled input. *)
  let rng = Prng.create 31 in
  let x = Inputs.gen_promise rng ~k:(P.k p) ~t:3 ~intersecting:true in
  let spec = LF.spec p in
  check "condition 2" true (Family.check_condition2 spec x).Family.ok;
  (* 4. Corollary 1's arithmetic emits a positive round bound. *)
  let r = Maxis_core.Theorems.linear p in
  check "bound positive" true (r.Maxis_core.Theorems.rounds_lower_bound > 0.0);
  (* 5. And it beats the Bachrach baseline shape at this n. *)
  let n = float_of_int r.Maxis_core.Theorems.n in
  check "beats baseline" true
    (Maxis_core.Bachrach_baseline.this_paper_linear.Maxis_core.Bachrach_baseline.rounds ~n
    > Maxis_core.Bachrach_baseline.bachrach_linear.Maxis_core.Bachrach_baseline.rounds ~n)

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "linear full" `Slow test_pipeline_linear_full;
          Alcotest.test_case "quadratic empirical" `Quick test_pipeline_quadratic_empirical;
          Alcotest.test_case "unweighted" `Quick test_pipeline_unweighted;
          Alcotest.test_case "upper-bound algorithms" `Quick
            test_congest_algorithms_on_hard_instance;
          Alcotest.test_case "amplification trend" `Quick test_hardness_amplification_trend;
          Alcotest.test_case "cc-to-rounds consistency" `Quick test_cc_to_rounds_consistency;
          Alcotest.test_case "whole story" `Quick test_full_paper_story_in_one;
        ] );
    ]
