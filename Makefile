# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test bench bench-par verify examples soak faults chaos netchaos fsck figures kill-resume serve bench-serve bench-netchaos serve-smoke largen bench-largen parlargen bench-parlargen cache-clean journal-clean clean

all: build

build:
	dune build @all

test:
	dune runtest

# Regenerate every experiment table (CSV twins land in results/).
bench:
	dune exec bench/main.exe

# Same tables, all cores + result cache (byte-identical stdout; the
# exec pool/cache counters go to stderr).  See docs/PARALLEL.md.
bench-par:
	MAXIS_JOBS=auto dune exec bench/main.exe

# One-call audit of the paper's assertions at a gap-valid parameter point.
verify:
	dune exec bin/maxis_lb.exe -- verify --ell 4 --players 3

examples:
	dune exec examples/quickstart.exe
	dune exec examples/two_party_warmup.exe
	dune exec examples/hardness_amplification.exe
	dune exec examples/quadratic_construction.exe
	dune exec examples/congest_simulation.exe
	dune exec examples/unweighted_transform.exe
	dune exec examples/player_protocol.exe

soak:
	MAXIS_SOAK=100 dune exec test/test_soak.exe

# Fault injection: hardened delivery vs adversarial links (docs/FAULTS.md).
faults:
	dune exec bench/main.exe -- FAULTS

# Supervised execution under combined fault plans: chaos test suite +
# the seeded bench leg (docs/RESILIENCE.md).
chaos:
	dune exec test/test_chaos.exe
	dune exec bench/main.exe -- CHAOS

# Network chaos: socket fault injection, connection-lifecycle and
# balancer-failover suite + the seeded bench leg (docs/SERVING.md).
netchaos:
	dune exec test/test_netchaos.exe
	dune exec bench/main.exe -- NETCHAOS

# Offline integrity scan of the result cache and sweep journals;
# quarantines invalid entries (exit 2 when damage was found).
fsck:
	dune exec bin/maxis_lb.exe -- fsck

figures:
	dune exec bench/main.exe -- F1-F6

# Crash-safety check: SIGKILL a sweep mid-run, resume it, diff the final
# CSVs against an uninterrupted reference (docs/RESILIENCE.md).
kill-resume:
	bash scripts/kill_resume.sh

# Run the solve daemon on the default sockets (docs/SERVING.md);
# Ctrl-C drains gracefully.
serve:
	dune exec bin/maxis_lb.exe -- serve \
	  --listen unix:results/serve.sock \
	  --metrics-listen unix:results/serve-metrics.sock --jobs 4

# Daemon capability table + multi-client load generator (in-process;
# appends a trajectory entry to BENCH_serve.json).
bench-serve:
	dune exec bench/main.exe -- SERVE

# Serving layer under seeded network chaos (in-process; writes
# results/netchaos_verdicts.csv and appends to BENCH_netchaos.json).
bench-netchaos:
	dune exec bench/main.exe -- NETCHAOS

# End-to-end smoke: real daemon process -> load over the wire ->
# Prometheus scrape -> SIGTERM drain (also the CI serve job).
serve-smoke:
	bash scripts/serve_smoke.sh

# Large-n engine smoke: CSR/executor differential battery + the
# LARGEN bench leg capped at n = 10⁴ (docs/PERF.md).
largen:
	dune exec test/test_csr.exe
	dune exec test/test_perf_guard.exe
	MAXIS_LARGEN_MAX_N=10000 dune exec bench/main.exe -- LARGEN

# Full-scale sweep to n = 10⁵: flood/BFS/Luby + one gadget family on
# CSR, plus the seed/list/flat executor speedup leg (writes
# results/largen.csv and appends a trajectory entry to BENCH_largen.json).
bench-largen:
	dune exec bench/main.exe -- LARGEN

# Sharded-runtime smoke: the jobs ∈ {1,2,3,8} differential battery,
# the per-domain allocation guard, then the PARLARGEN parity leg
# capped at n = 10⁴ (docs/PERF.md).
parlargen:
	dune exec test/test_csr.exe
	dune exec test/test_perf_guard.exe
	MAXIS_LARGEN_MAX_N=10000 dune exec bench/main.exe -- PARLARGEN

# Full-scale parallel sweep: run_flat_par vs run_flat parity + scaling
# at every width, flood/BFS/Luby to MAXIS_LARGEN_MAX_N (default 10⁵)
# plus both gadget families with the sharded row sort (writes
# results/parlargen.csv and appends to BENCH_largen.json).
bench-parlargen:
	dune exec bench/main.exe -- PARLARGEN

# Drop cached exact-MIS results; the next run recomputes and repopulates.
cache-clean:
	rm -rf results/cache

# Drop sweep journals (completion records only; cached values survive).
journal-clean:
	rm -rf results/journal

clean:
	dune clean
	rm -rf results figures test_output.txt bench_output.txt
